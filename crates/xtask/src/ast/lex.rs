//! Rust lexer for the in-repo AST engine.
//!
//! The workspace builds offline with zero external dependencies, so the
//! analysis engine cannot use `syn`/`proc-macro2`; this lexer is the
//! bottom layer of a hand-rolled equivalent. It turns source text into a
//! flat token stream with line information, classifying identifiers,
//! literals, punctuation (multi-character operators joined), delimiters,
//! and lifetimes. Comments and whitespace produce no tokens; string and
//! char literal *contents* are dropped (only the fact that a literal
//! occurred survives), so no pass can ever fire on prose or quoted text.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `as`, `x0`, …).
    Ident,
    /// Lifetime (`'a`) — the text excludes the quote.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u32`).
    Int,
    /// Float literal (`1.0`, `2e-9`, `3.5f32`).
    Float,
    /// String / raw-string / byte-string literal (contents dropped).
    Str,
    /// Char or byte literal (contents dropped).
    Char,
    /// Punctuation; multi-char operators are one token (`==`, `->`, `::`).
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Kind,
    /// Token text; empty-ish placeholder (`"`/`'`) for literal contents.
    pub text: String,
    /// 0-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works.
const JOINED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into tokens. Never fails: unrecognized bytes become
/// single-character punctuation so analysis degrades gracefully on
/// malformed input instead of aborting the lint run.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(Token {
                    kind: Kind::Str,
                    text: String::from("\""),
                    line,
                });
                i = skip_string(&chars, i, &mut line);
            }
            'r' | 'b' if is_string_prefix(&chars, i) => {
                out.push(Token {
                    kind: Kind::Str,
                    text: String::from("\""),
                    line,
                });
                i = skip_prefixed_string(&chars, i, &mut line);
            }
            '\'' => {
                // Char literal vs lifetime: a char literal closes within a
                // short window; a lifetime never has a closing quote.
                if let Some(end) = char_literal_end(&chars, i) {
                    out.push(Token {
                        kind: Kind::Char,
                        text: String::from("'"),
                        line,
                    });
                    i = end + 1;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    out.push(Token {
                        kind: Kind::Lifetime,
                        text: chars[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let (tok, end) = lex_number(&chars, i, line);
                out.push(tok);
                i = end;
            }
            '(' | '[' | '{' => {
                out.push(Token {
                    kind: Kind::Open,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                out.push(Token {
                    kind: Kind::Close,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                let mut matched = None;
                for op in JOINED {
                    if chars[i..].starts_with(&op.chars().collect::<Vec<_>>()[..]) {
                        matched = Some(*op);
                        break;
                    }
                }
                let text = matched.map_or_else(|| c.to_string(), str::to_string);
                i += text.chars().count();
                out.push(Token {
                    kind: Kind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

/// Lexes a numeric literal starting at `i`; returns the token and the index
/// one past its end.
fn lex_number(chars: &[char], i: usize, line: usize) -> (Token, usize) {
    let start = i;
    let mut j = i;
    let mut is_float = false;
    if chars[j] == '0' && matches!(chars.get(j + 1), Some('x' | 'o' | 'b')) {
        j += 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
    } else {
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // A dot starts a fractional part only when not `..` (range) and not
        // a method call on a literal (`1.min(2)`).
        if chars.get(j) == Some(&'.')
            && chars.get(j + 1) != Some(&'.')
            && !chars
                .get(j + 1)
                .is_some_and(|c| c.is_alphabetic() || *c == '_')
        {
            is_float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        if matches!(chars.get(j), Some('e' | 'E'))
            && (chars.get(j + 1).is_some_and(char::is_ascii_digit)
                || (matches!(chars.get(j + 1), Some('+' | '-'))
                    && chars.get(j + 2).is_some_and(char::is_ascii_digit)))
        {
            is_float = true;
            j += 1;
            if matches!(chars.get(j), Some('+' | '-')) {
                j += 1;
            }
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        // Type suffix (`u32`, `f64`, `usize`, …) glues onto the literal.
        if chars.get(j).is_some_and(char::is_ascii_alphabetic) {
            let suffix_start = j;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let suffix: String = chars[suffix_start..j].iter().collect();
            if suffix.starts_with('f') {
                is_float = true;
            }
        }
    }
    (
        Token {
            kind: if is_float { Kind::Float } else { Kind::Int },
            text: chars[start..j].iter().collect(),
            line,
        },
        j,
    )
}

fn is_string_prefix(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false; // `for` ends in 'r', `b` could end an ident
        }
    }
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn skip_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_prefixed_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start;
    let mut raw = false;
    while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
        raw |= chars[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if !raw {
        return skip_string(chars, i, line);
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
            return i + 1 + hashes;
        }
        if chars[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => (i + 3..(i + 12).min(chars.len())).find(|&k| chars[k] == '\''),
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_delims() {
        let toks = lex("fn f(x: u8) -> u8 { x }");
        let kinds: Vec<Kind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                Kind::Ident,
                Kind::Ident,
                Kind::Open,
                Kind::Ident,
                Kind::Punct,
                Kind::Ident,
                Kind::Close,
                Kind::Punct,
                Kind::Ident,
                Kind::Open,
                Kind::Ident,
                Kind::Close,
            ]
        );
        assert!(toks[7].is_punct("->"));
    }

    #[test]
    fn multi_char_operators_join() {
        assert_eq!(
            texts("a == b != c <= d >> e :: f"),
            vec!["a", "==", "b", "!=", "c", "<=", "d", ">>", "e", "::", "f"]
        );
    }

    #[test]
    fn comments_and_strings_vanish() {
        let toks = lex("x // unwrap()\ny /* panic! */ z \"s == 1.0\" w");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["x", "y", "z", "w"]);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let toks = lex("let r = r#\"un\"wrap\"# ; let b = b\"bytes\" ;");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("let")));
        assert!(!toks.iter().any(|t| t.text.contains("wrap")));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = lex("1 2.5 1e-9 0xFF 3f64 1_000 4u32 1.min 0..5");
        let kinds: Vec<(Kind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, Kind::Int | Kind::Float))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (Kind::Int, "1"),
                (Kind::Float, "2.5"),
                (Kind::Float, "1e-9"),
                (Kind::Int, "0xFF"),
                (Kind::Float, "3f64"),
                (Kind::Int, "1_000"),
                (Kind::Int, "4u32"),
                (Kind::Int, "1"),
                (Kind::Int, "0"),
                (Kind::Int, "5"),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc /* x\ny */ d\n\"s1\ns2\" e");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("a"), Some(0));
        assert_eq!(find("b"), Some(1));
        assert_eq!(find("c"), Some(3));
        assert_eq!(find("d"), Some(4));
        assert_eq!(find("e"), Some(6));
    }
}
