//! Source loading: files, crates, and the parsed workspace.
//!
//! Every file is lexed and parsed exactly once at load time; passes run as
//! visitors over the shared result ([`SourceFile::trees`] for token-level
//! scans, [`SourceFile::items`] and the workspace [`ast::index::Index`]
//! for item- and call-graph-level analysis). `#[cfg(test)]` items are
//! stripped from both views, and comment/string contents never survive
//! lexing, so no pass can fire on prose or test code. Escape-hatch markers
//! (`lint:allow(...)`) are read from the raw text, since they live in
//! comments.

use std::fs;
use std::path::Path;

use crate::ast::{self, index::Index, items::FileItems, tree::Tree};

/// One source file: raw text plus the parsed, test-stripped AST.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative display path.
    pub path: String,
    /// Original text (used only for `lint:allow` markers and hygiene).
    pub raw: String,
    /// Token-tree forest with `#[cfg(test)]` items removed.
    pub trees: Vec<Tree>,
    /// Items parsed from `trees`.
    pub items: FileItems,
}

impl SourceFile {
    /// Builds a file from in-memory contents (used by fixture tests).
    #[must_use]
    pub fn from_contents(path: &str, raw: &str) -> Self {
        let trees = ast::index::strip_test_items(&ast::tree::build(&ast::lex::lex(raw)));
        let items = ast::items::parse(&trees);
        SourceFile {
            path: path.to_string(),
            raw: raw.to_string(),
            trees,
            items,
        }
    }

    /// Whether a `lint:allow(name)` marker covers `line` (0-based).
    ///
    /// A marker counts if it appears on the line itself or anywhere in the
    /// contiguous run of `//` comment lines immediately above it.
    #[must_use]
    pub fn is_allowed(&self, line: usize, name: &str) -> bool {
        let needle = format!("lint:allow({name})");
        let lines: Vec<&str> = self.raw.lines().collect();
        let has = |i: usize| lines.get(i).is_some_and(|l| l.contains(&needle));
        if has(line) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let trimmed = lines.get(i).map_or("", |l| l.trim_start());
            if !trimmed.starts_with("//") {
                return false;
            }
            if has(i) {
                return true;
            }
        }
        false
    }
}

/// A workspace member crate: manifest plus all `src/**/*.rs` files.
#[derive(Debug, Clone)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Raw `Cargo.toml` contents.
    pub manifest: String,
    /// Source files; the crate root (`lib.rs` or `main.rs`) comes first.
    pub files: Vec<SourceFile>,
}

impl CrateSrc {
    /// Builds a crate from in-memory parts (used by fixture tests).
    #[must_use]
    pub fn from_parts(name: &str, manifest: &str, files: Vec<SourceFile>) -> Self {
        CrateSrc {
            name: name.to_string(),
            manifest: manifest.to_string(),
            files,
        }
    }

    /// The crate root file (`lib.rs` preferred, else `main.rs`), if any.
    #[must_use]
    pub fn root_file(&self) -> Option<&SourceFile> {
        self.files
            .iter()
            .find(|f| f.path.ends_with("lib.rs"))
            .or_else(|| self.files.iter().find(|f| f.path.ends_with("main.rs")))
    }
}

/// All member crates of the workspace under `root`.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub crates: Vec<CrateSrc>,
}

impl Workspace {
    /// Loads the facade package (`root/src`) and every `root/crates/*`.
    ///
    /// # Errors
    ///
    /// Returns a message when the root manifest cannot be read, or when the
    /// root holds no crates at all — a lint run that scans zero files would
    /// otherwise report green on a mistyped `--root`.
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut crates = Vec::new();
        if root.join("Cargo.toml").exists() && root.join("src").exists() {
            crates.push(load_crate(root, root)?);
        }
        let crates_dir = root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates_dir) {
            let mut dirs: Vec<_> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").exists())
                .collect();
            dirs.sort();
            for dir in dirs {
                crates.push(load_crate(root, &dir)?);
            }
        }
        if crates.is_empty() {
            return Err(format!(
                "no crates found under {} — wrong --root?",
                root.display()
            ));
        }
        Ok(Workspace { crates })
    }

    /// The crate with this package name, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&CrateSrc> {
        self.crates.iter().find(|c| c.name == name)
    }

    /// All files across all crates.
    pub fn files(&self) -> impl Iterator<Item = &SourceFile> {
        self.crates.iter().flat_map(|c| c.files.iter())
    }

    /// Builds the workspace-wide item index over every crate.
    ///
    /// The gate's own crate is excluded: no codec path calls into the lint
    /// tool, and its helper names (`get`, `parse`, …) would only add
    /// resolution ambiguity.
    #[must_use]
    pub fn build_index(&self) -> Index {
        let mut idx = Index::default();
        for krate in &self.crates {
            if krate.name == "xtask" {
                continue;
            }
            for file in &krate.files {
                idx.add_file(&krate.name, &file.path, &file.items);
            }
        }
        idx
    }
}

fn load_crate(root: &Path, dir: &Path) -> Result<CrateSrc, String> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let name = manifest
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("name").map(|rest| {
                rest.trim_start_matches(['=', ' ', '"'])
                    .trim_end_matches('"')
            })
        })
        .unwrap_or("?")
        .to_string();
    let mut files = Vec::new();
    collect_rs(root, &dir.join("src"), &mut files)?;
    // Crate root first, then alphabetical: passes that only look at the
    // root (hygiene) and humans reading reports both benefit.
    files.sort_by_key(|f| {
        let is_root = f.path.ends_with("lib.rs") || f.path.ends_with("main.rs");
        (!is_root, f.path.clone())
    });
    Ok(CrateSrc {
        name,
        manifest,
        files,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let raw =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(SourceFile::from_contents(&display, &raw));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_parse_to_test_free_items() {
        let f = SourceFile::from_contents(
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n",
        );
        let names: Vec<&str> = f.items.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["live", "tail"]);
    }

    #[test]
    fn allow_markers_cover_line_and_preceding_comment_block() {
        let src = "a\n// lint:allow(panic): reason spans\n// two lines\nx.unwrap();\ny.unwrap(); // lint:allow(panic)\nz.unwrap();\n";
        let f = SourceFile::from_contents("a.rs", src);
        assert!(f.is_allowed(3, "panic"));
        assert!(f.is_allowed(4, "panic"));
        assert!(!f.is_allowed(5, "panic"));
        assert!(!f.is_allowed(3, "float-cmp"));
    }

    #[test]
    fn workspace_index_merges_crates() {
        let a = CrateSrc::from_parts(
            "crate-a",
            "[package]\nname = \"crate-a\"\n",
            vec![SourceFile::from_contents(
                "crates/a/src/lib.rs",
                "pub fn shared() -> u8 { 0 }\n",
            )],
        );
        let b = CrateSrc::from_parts(
            "crate-b",
            "[package]\nname = \"crate-b\"\n",
            vec![SourceFile::from_contents(
                "crates/b/src/lib.rs",
                "pub fn shared() -> u16 { 0 }\npub fn caller() { shared(); }\n",
            )],
        );
        let ws = Workspace { crates: vec![a, b] };
        let idx = ws.build_index();
        assert_eq!(idx.resolve("shared").len(), 2);
        let caller = idx.resolve("caller")[0];
        assert!(idx.fns[caller].calls.contains("shared"));
    }
}
