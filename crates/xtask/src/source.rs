//! Source loading and sanitization.
//!
//! Every pass works on a *sanitized* view of a file: comments and string
//! literals are blanked (preserving line structure) and `#[cfg(test)]`
//! modules are removed by brace matching, so token scans never fire on
//! prose, test code, or string contents. Escape-hatch markers
//! (`lint:allow(...)`) are read from the raw text, since they live in
//! comments.

use std::fs;
use std::path::Path;

/// One source file, raw and sanitized.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative display path.
    pub path: String,
    /// Original text.
    pub raw: String,
    /// Comments/strings blanked, test modules blanked; same line layout.
    pub code: String,
}

impl SourceFile {
    /// Builds a file from in-memory contents (used by fixture tests).
    pub fn from_contents(path: &str, raw: &str) -> Self {
        let code = strip_test_modules(&sanitize(raw));
        SourceFile {
            path: path.to_string(),
            raw: raw.to_string(),
            code,
        }
    }

    /// Whether a `lint:allow(name)` marker covers `line` (0-based).
    ///
    /// A marker counts if it appears on the line itself or anywhere in the
    /// contiguous run of `//` comment lines immediately above it.
    pub fn is_allowed(&self, line: usize, name: &str) -> bool {
        let needle = format!("lint:allow({name})");
        let lines: Vec<&str> = self.raw.lines().collect();
        let has = |i: usize| lines.get(i).is_some_and(|l| l.contains(&needle));
        if has(line) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let trimmed = lines.get(i).map_or("", |l| l.trim_start());
            if !trimmed.starts_with("//") {
                return false;
            }
            if has(i) {
                return true;
            }
        }
        false
    }
}

/// A workspace member crate: manifest plus all `src/**/*.rs` files.
#[derive(Debug, Clone)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Raw `Cargo.toml` contents.
    pub manifest: String,
    /// Source files; the crate root (`lib.rs` or `main.rs`) comes first.
    pub files: Vec<SourceFile>,
}

impl CrateSrc {
    /// Builds a crate from in-memory parts (used by fixture tests).
    pub fn from_parts(name: &str, manifest: &str, files: Vec<SourceFile>) -> Self {
        CrateSrc {
            name: name.to_string(),
            manifest: manifest.to_string(),
            files,
        }
    }

    /// The crate root file (`lib.rs` preferred, else `main.rs`), if any.
    pub fn root_file(&self) -> Option<&SourceFile> {
        self.files
            .iter()
            .find(|f| f.path.ends_with("lib.rs"))
            .or_else(|| self.files.iter().find(|f| f.path.ends_with("main.rs")))
    }
}

/// All member crates of the workspace under `root`.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub crates: Vec<CrateSrc>,
}

impl Workspace {
    /// Loads the facade package (`root/src`) and every `root/crates/*`.
    ///
    /// # Errors
    ///
    /// Returns a message when the root manifest cannot be read, or when the
    /// root holds no crates at all — a lint run that scans zero files would
    /// otherwise report green on a mistyped `--root`.
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut crates = Vec::new();
        if root.join("Cargo.toml").exists() && root.join("src").exists() {
            crates.push(load_crate(root, root, "")?);
        }
        let crates_dir = root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates_dir) {
            let mut dirs: Vec<_> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").exists())
                .collect();
            dirs.sort();
            for dir in dirs {
                crates.push(load_crate(root, &dir, "")?);
            }
        }
        if crates.is_empty() {
            return Err(format!(
                "no crates found under {} — wrong --root?",
                root.display()
            ));
        }
        Ok(Workspace { crates })
    }

    /// The crate with this package name, if present.
    pub fn get(&self, name: &str) -> Option<&CrateSrc> {
        self.crates.iter().find(|c| c.name == name)
    }

    /// All files across all crates.
    pub fn files(&self) -> impl Iterator<Item = &SourceFile> {
        self.crates.iter().flat_map(|c| c.files.iter())
    }
}

fn load_crate(root: &Path, dir: &Path, _unused: &str) -> Result<CrateSrc, String> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let name = manifest
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("name").map(|rest| {
                rest.trim_start_matches(['=', ' ', '"'])
                    .trim_end_matches('"')
            })
        })
        .unwrap_or("?")
        .to_string();
    let mut files = Vec::new();
    collect_rs(root, &dir.join("src"), &mut files)?;
    // Crate root first, then alphabetical: passes that only look at the
    // root (hygiene) and humans reading reports both benefit.
    files.sort_by_key(|f| {
        let is_root = f.path.ends_with("lib.rs") || f.path.ends_with("main.rs");
        (!is_root, f.path.clone())
    });
    Ok(CrateSrc {
        name,
        manifest,
        files,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let raw =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(SourceFile::from_contents(&display, &raw));
        }
    }
    Ok(())
}

/// Blanks comments, string/char literals and their delimiters with spaces,
/// preserving newlines so line numbers survive.
pub fn sanitize(raw: &str) -> String {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => i = blank_string(&chars, i, 0, &mut out),
            'r' | 'b' if is_raw_or_byte_string(&chars, i) => {
                // Skip the r/b/br prefix and any #s, then the quoted body.
                let mut j = i;
                while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                    out.push(' ');
                    j += 1;
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    out.push(' ');
                    hashes += 1;
                    j += 1;
                }
                if hashes > 0 || raw_prefix_has_r(&chars, i) {
                    i = blank_raw_string(&chars, j, hashes, &mut out);
                } else {
                    i = blank_string(&chars, j, 0, &mut out);
                }
            }
            '\'' => {
                // Char literal vs lifetime: a char literal closes within a
                // few characters; a lifetime never has a closing quote.
                if let Some(end) = char_literal_end(&chars, i) {
                    for &ch in &chars[i..=end] {
                        out.push(if ch == '\n' { '\n' } else { ' ' });
                    }
                    i = end + 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // Only treat r"/r#"/b"/br"/br#" as string starts when not part of an
    // identifier (e.g. `for` ends in 'r').
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn raw_prefix_has_r(chars: &[char], i: usize) -> bool {
    chars[i] == 'r' || (chars[i] == 'b' && chars.get(i + 1) == Some(&'r'))
}

fn blank_string(chars: &[char], start: usize, _hashes: usize, out: &mut String) -> usize {
    let mut i = start;
    out.push(' '); // opening quote
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push_str("  ");
                i += 2;
            }
            '"' => {
                out.push(' ');
                return i + 1;
            }
            '\n' => {
                out.push('\n');
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

fn blank_raw_string(chars: &[char], start: usize, hashes: usize, out: &mut String) -> usize {
    let mut i = start;
    out.push(' '); // opening quote
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
            if closed {
                for _ in 0..=hashes {
                    out.push(' ');
                }
                return i + 1 + hashes;
            }
        }
        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
        i += 1;
    }
    i
}

fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote within a short window
            // (covers \n, \', \u{10FFFF}).
            (i + 3..(i + 12).min(chars.len())).find(|&k| chars[k] == '\'')
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

/// Blanks every `#[cfg(test)]`-gated item (typically `mod tests { ... }`)
/// from already-sanitized code.
pub fn strip_test_modules(code: &str) -> String {
    let mut out: Vec<char> = code.chars().collect();
    let bytes: Vec<char> = out.clone();
    let hay: String = bytes.iter().collect();
    let mut search_from = 0usize;
    while let Some(rel) = hay[search_from..].find("#[cfg(test)]") {
        let attr_start = search_from + rel;
        // Find the first `{` after the attribute and blank through its
        // matching `}`.
        let Some(open_rel) = hay[attr_start..].find('{') else {
            break;
        };
        let open = attr_start + open_rel;
        let mut depth = 0usize;
        let mut end = None;
        for (k, ch) in hay[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let stop = end.unwrap_or(hay.len() - 1);
        for (k, slot) in out.iter_mut().enumerate().take(stop + 1).skip(attr_start) {
            if bytes[k] != '\n' {
                *slot = ' ';
            }
        }
        search_from = stop + 1;
    }
    out.into_iter().collect()
}

/// A function declaration found in sanitized code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body (inside braces) in the sanitized code, empty
    /// for bodiless trait-method declarations.
    pub body: std::ops::Range<usize>,
}

/// Extracts `fn` declarations (with body extents) from sanitized code.
pub fn functions(code: &str) -> Vec<FnDecl> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = code[i..].find("fn ") {
        let at = i + rel;
        i = at + 3;
        // Must be a keyword: preceded by start, whitespace, or `(` (closures
        // never use `fn`), and not part of an identifier.
        if at > 0 {
            let p = bytes[at - 1] as char;
            if p.is_alphanumeric() || p == '_' {
                continue;
            }
        }
        let mut j = at + 3;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() {
            let c = bytes[j] as char;
            if c.is_alphanumeric() || c == '_' {
                j += 1;
            } else {
                break;
            }
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        let line = code[..at].matches('\n').count();
        // Body: first `{` before a `;` at depth 0 (a `;` means a bodiless
        // trait declaration).
        let mut body = 0..0;
        let mut k = j;
        let mut angle = 0i32;
        while k < bytes.len() {
            match bytes[k] as char {
                '<' => angle += 1,
                '>' => angle -= 1,
                ';' if angle <= 0 => break,
                '{' => {
                    let open = k;
                    let mut depth = 0usize;
                    while k < bytes.len() {
                        match bytes[k] as char {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    body = open + 1..k;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnDecl { name, line, body });
    }
    out
}

/// 0-based line number of byte offset `pos` in `text`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text[..pos.min(text.len())].matches('\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_blanks_comments_and_strings() {
        let src = "let a = \"un//wrap\"; // unwrap()\nlet b = 1; /* panic! */\n";
        let s = sanitize(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let a ="));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn sanitize_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\n' }\nlet q = '\"';\nlet s = \"x\";";
        let s = sanitize(src);
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        // The quote char literal must not open a string.
        assert!(!s.contains('x') || !s.contains("\"x\""));
    }

    #[test]
    fn sanitize_handles_raw_strings() {
        let src = "let r = r#\"unwrap() \"quoted\" panic!\"#; let after = 1;";
        let s = sanitize(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let after = 1;"));
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.expect(\"\"); }\n}\nfn tail() {}\n";
        let f = SourceFile::from_contents("a.rs", src);
        assert!(f.code.contains("live"));
        assert!(f.code.contains("unwrap"));
        assert!(!f.code.contains("expect"));
        assert!(f.code.contains("tail"));
    }

    #[test]
    fn allow_markers_cover_line_and_preceding_comment_block() {
        let src = "a\n// lint:allow(panic): reason spans\n// two lines\nx.unwrap();\ny.unwrap(); // lint:allow(panic)\nz.unwrap();\n";
        let f = SourceFile::from_contents("a.rs", src);
        assert!(f.is_allowed(3, "panic"));
        assert!(f.is_allowed(4, "panic"));
        assert!(!f.is_allowed(5, "panic"));
        assert!(!f.is_allowed(3, "float-cmp"));
    }

    #[test]
    fn functions_are_found_with_bodies() {
        let code = "pub fn alpha(x: u8) -> u8 { x + 1 }\nfn beta();\nimpl T { fn gamma(&self) { loop { break; } } }\n";
        let fns = functions(code);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        assert!(fns[0].body.len() > 2);
        assert!(fns[1].body.is_empty());
        assert!(code[fns[2].body.clone()].contains("loop"));
    }
}
