//! Ratchet baseline: known findings that may only shrink.
//!
//! New analysis passes land with pre-existing findings; blocking the gate
//! on all of them at once would freeze the repo. Instead the committed
//! `crates/xtask/baseline.toml` records, per pass and file, how many
//! findings are tolerated. The gate then fails on any finding *beyond*
//! the recorded count — so new debt is impossible — and warns when a
//! count is stale (the code got better; shrink the baseline to lock the
//! improvement in). Regenerate with
//! `cargo run -p xtask -- lint --write-baseline`.
//!
//! The format is a strict TOML subset (tables of `"path" = count`) parsed
//! by hand because the workspace builds with no external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::Violation;

/// Tolerated finding counts, keyed by pass then file path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// The result of filtering a finding list through a baseline.
#[derive(Debug, Clone, Default)]
pub struct Applied {
    /// Findings beyond the baseline — these fail the gate.
    pub new: Vec<Violation>,
    /// Findings covered by the baseline — reported, not fatal.
    pub baselined: Vec<Violation>,
    /// Baseline entries larger than reality — shrink them.
    pub stale: Vec<String>,
}

impl Baseline {
    /// Parses the TOML subset: `[pass]` tables of `"path" = count`.
    ///
    /// # Errors
    ///
    /// Returns the offending line when it is neither a comment, a table
    /// header, nor a `key = integer` entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut section: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().trim_matches('"');
                if name.is_empty() {
                    return Err(format!("baseline line {}: empty table name", i + 1));
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected `key = count`", i + 1));
            };
            let Some(pass) = &section else {
                return Err(format!(
                    "baseline line {}: entry before any [pass] table",
                    i + 1
                ));
            };
            let path = key.trim().trim_matches('"').to_string();
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: count is not an integer", i + 1))?;
            if n == 0 {
                return Err(format!(
                    "baseline line {}: zero-count entry — delete it instead",
                    i + 1
                ));
            }
            counts.entry(pass.clone()).or_default().insert(path, n);
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline that tolerates exactly the given findings.
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for v in violations {
            *counts
                .entry(v.pass.to_string())
                .or_default()
                .entry(v.path.clone())
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes back to the TOML subset, deterministically ordered.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# xtask lint ratchet baseline — tolerated pre-existing findings.\n\
             # Counts may only decrease; findings beyond a count fail the gate.\n\
             # Regenerate with: cargo run -p xtask -- lint --write-baseline\n",
        );
        for (pass, files) in &self.counts {
            let _ = write!(out, "\n[{pass}]\n");
            for (path, n) in files {
                let _ = writeln!(out, "\"{path}\" = {n}");
            }
        }
        out
    }

    /// Splits findings into new vs baselined and reports stale entries.
    ///
    /// Findings are consumed in order per `(pass, path)` key: the first
    /// `count` stay baselined, anything further is new.
    #[must_use]
    pub fn apply(&self, violations: Vec<Violation>) -> Applied {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut applied = Applied::default();
        for v in violations {
            let allowed = self
                .counts
                .get(v.pass)
                .and_then(|files| files.get(&v.path))
                .copied()
                .unwrap_or(0);
            let slot = used
                .entry((v.pass.to_string(), v.path.clone()))
                .or_insert(0);
            *slot += 1;
            if *slot <= allowed {
                applied.baselined.push(v);
            } else {
                applied.new.push(v);
            }
        }
        for (pass, files) in &self.counts {
            for (path, &allowed) in files {
                let actual = used
                    .get(&(pass.clone(), path.clone()))
                    .copied()
                    .unwrap_or(0);
                if actual < allowed {
                    applied.stale.push(format!(
                        "[{pass}] {path}: baseline allows {allowed} but only {actual} found — shrink the entry"
                    ));
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pass: &'static str, path: &str, line: usize) -> Violation {
        Violation::new(pass, path, line, "m")
    }

    #[test]
    fn roundtrips_through_toml() {
        let b = Baseline::from_violations(&[
            v("cast-safety", "crates/a/src/x.rs", 1),
            v("cast-safety", "crates/a/src/x.rs", 9),
            v("error-discipline", "crates/b/src/y.rs", 3),
        ]);
        let text = b.to_toml();
        assert!(text.contains("[cast-safety]"));
        assert!(text.contains("\"crates/a/src/x.rs\" = 2"));
        let parsed = Baseline::parse(&text).expect("parse");
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(
            Baseline::parse("\"a.rs\" = 1\n").is_err(),
            "entry before table"
        );
        assert!(Baseline::parse("[p]\n\"a.rs\" = x\n").is_err(), "bad count");
        assert!(
            Baseline::parse("[p]\n\"a.rs\" = 0\n").is_err(),
            "zero count"
        );
        assert!(Baseline::parse("[p]\nnonsense\n").is_err(), "no equals");
        assert!(Baseline::parse("[]\n").is_err(), "empty table");
    }

    #[test]
    fn apply_ratchets_counts() {
        let b = Baseline::parse("[cast-safety]\n\"a.rs\" = 2\n").expect("parse");
        // Equal count: all baselined.
        let a = b.apply(vec![
            v("cast-safety", "a.rs", 1),
            v("cast-safety", "a.rs", 2),
        ]);
        assert!(a.new.is_empty());
        assert_eq!(a.baselined.len(), 2);
        assert!(a.stale.is_empty());
        // One extra: the overflow is new.
        let a = b.apply(vec![
            v("cast-safety", "a.rs", 1),
            v("cast-safety", "a.rs", 2),
            v("cast-safety", "a.rs", 3),
        ]);
        assert_eq!(a.new.len(), 1);
        assert_eq!(a.new[0].line, 3);
        // A different file or pass is never covered.
        let a = b.apply(vec![
            v("cast-safety", "b.rs", 1),
            v("determinism", "a.rs", 1),
        ]);
        assert_eq!(a.new.len(), 2);
    }

    #[test]
    fn shrunk_findings_surface_stale_entries() {
        let b = Baseline::parse("[cast-safety]\n\"a.rs\" = 3\n\"gone.rs\" = 1\n").expect("parse");
        let a = b.apply(vec![v("cast-safety", "a.rs", 1)]);
        assert!(a.new.is_empty());
        assert_eq!(a.stale.len(), 2, "{:?}", a.stale);
        assert!(a.stale[0].contains("allows 3 but only 1"));
        assert!(a.stale[1].contains("gone.rs"));
    }

    #[test]
    fn empty_baseline_passes_everything_through_as_new() {
        let a = Baseline::default().apply(vec![v("hygiene", "a.rs", 0)]);
        assert_eq!(a.new.len(), 1);
        assert!(a.baselined.is_empty());
    }
}
