//! Energy model (the paper's Table 3 and the §7.3 ratios).
//!
//! The paper measures NCCL end-to-end communication at 5120 pJ/bit (BMC
//! power sensors during nccl-tests) and derives codec energy from the
//! synthesized designs. We carry those calibrated numbers and reproduce
//! the derived arithmetic: compression is ~32× cheaper than transmission
//! for the three-in-one codec, and with a compression ratio r the
//! end-to-end energy gain is `E_link / (E_link/r + E_enc + E_dec)`.

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyRow {
    /// Display name.
    pub name: &'static str,
    /// Power in W (None for the NCCL end-to-end row).
    pub power_w: Option<f64>,
    /// Die area in mm² (None for NCCL).
    pub area_mm2: Option<f64>,
    /// Energy per bit in pJ.
    pub energy_pj_per_bit: f64,
}

/// NCCL end-to-end communication energy.
pub const NCCL_PJ_PER_BIT: f64 = 5120.0;

/// The full Table 3.
pub fn table3() -> Vec<EnergyRow> {
    vec![
        EnergyRow {
            name: "NCCL End to End",
            power_w: None,
            area_mm2: None,
            energy_pj_per_bit: NCCL_PJ_PER_BIT,
        },
        EnergyRow {
            name: "H.264 Enc (100Gbps)",
            power_w: Some(1.1),
            area_mm2: Some(0.96),
            energy_pj_per_bit: 167.8,
        },
        EnergyRow {
            name: "H.264 Dec (100Gbps)",
            power_w: Some(1.0),
            area_mm2: Some(0.97),
            energy_pj_per_bit: 154.3,
        },
        EnergyRow {
            name: "H.265 Enc (100Gbps)",
            power_w: Some(11.0),
            area_mm2: Some(11.7),
            energy_pj_per_bit: 1707.5,
        },
        EnergyRow {
            name: "H.265 Dec (100Gbps)",
            power_w: Some(4.3),
            area_mm2: Some(2.1),
            energy_pj_per_bit: 665.4,
        },
        EnergyRow {
            name: "Three-in-one Enc",
            power_w: Some(0.78),
            area_mm2: Some(0.70),
            energy_pj_per_bit: 97.8,
        },
        EnergyRow {
            name: "Three-in-one Dec",
            power_w: Some(0.58),
            area_mm2: Some(0.58),
            energy_pj_per_bit: 63.5,
        },
    ]
}

/// Looks up a row by name.
pub fn row(name: &str) -> Option<EnergyRow> {
    table3().into_iter().find(|r| r.name == name)
}

/// Ratio of link energy to codec (enc+dec) energy — the paper's
/// "31.7× lower than end-to-end communication" for the three-in-one codec.
pub fn compression_vs_link_ratio(enc_pj: f64, dec_pj: f64) -> f64 {
    NCCL_PJ_PER_BIT / (enc_pj + dec_pj)
}

/// End-to-end energy-efficiency gain of compressed communication at
/// compression ratio `r`: `E_link / (E_link/r + E_enc + E_dec)` (§7.3).
pub fn end_to_end_gain(r: f64, enc_pj: f64, dec_pj: f64) -> f64 {
    assert!(r > 0.0, "compression ratio must be positive");
    NCCL_PJ_PER_BIT / (NCCL_PJ_PER_BIT / r + enc_pj + dec_pj)
}

/// Energy in joules to move `bits` uncompressed over NCCL.
pub fn link_energy_j(bits: u64) -> f64 {
    bits as f64 * NCCL_PJ_PER_BIT * 1e-12
}

/// Total energy in joules to compress-at-ratio-r and move `bits` of raw
/// payload (enc+dec on the full raw stream, link on the compressed one).
pub fn compressed_transfer_energy_j(bits: u64, r: f64, enc_pj: f64, dec_pj: f64) -> f64 {
    assert!(r > 0.0, "compression ratio must be positive");
    let b = bits as f64;
    (b / r * NCCL_PJ_PER_BIT + b * (enc_pj + dec_pj)) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_and_ordered() {
        let t = table3();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].name, "NCCL End to End");
        assert!(t[0].power_w.is_none());
        for r in &t[1..] {
            assert!(r.power_w.is_some() && r.area_mm2.is_some(), "{}", r.name);
        }
    }

    #[test]
    fn three_in_one_ratio_matches_paper() {
        // 5120 / (97.8 + 63.5) = 31.7x (§7.3).
        let ratio = compression_vs_link_ratio(97.8, 63.5);
        assert!((ratio - 31.74).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn five_x_compression_gain_matches_paper() {
        // 5120 / (5120/5 + 97.8 + 63.5) = 4.32x (§7.3).
        let g = end_to_end_gain(5.0, 97.8, 63.5);
        assert!((g - 4.32).abs() < 0.01, "gain {g}");
    }

    #[test]
    fn gain_increases_with_ratio_but_saturates() {
        let g2 = end_to_end_gain(2.0, 97.8, 63.5);
        let g5 = end_to_end_gain(5.0, 97.8, 63.5);
        let g20 = end_to_end_gain(20.0, 97.8, 63.5);
        let g_inf = end_to_end_gain(1e9, 97.8, 63.5);
        assert!(g2 < g5 && g5 < g20 && g20 < g_inf);
        // Saturation point: link energy fully amortized, codec remains.
        assert!((g_inf - NCCL_PJ_PER_BIT / (97.8 + 63.5)).abs() < 0.1);
    }

    #[test]
    fn no_compression_is_a_net_loss() {
        // r = 1 still pays the codec energy: gain < 1.
        assert!(end_to_end_gain(1.0, 97.8, 63.5) < 1.0);
    }

    #[test]
    fn transfer_energy_accounting() {
        let bits = 1_000_000_000u64; // 1 Gb
        let raw = link_energy_j(bits);
        assert!((raw - 5.12).abs() < 1e-9, "raw {raw}");
        let comp = compressed_transfer_energy_j(bits, 5.0, 97.8, 63.5);
        assert!((raw / comp - end_to_end_gain(5.0, 97.8, 63.5)).abs() < 1e-9);
    }

    #[test]
    fn three_in_one_cheaper_than_h26x() {
        let t31_enc = row("Three-in-one Enc").unwrap();
        let h264_enc = row("H.264 Enc (100Gbps)").unwrap();
        let h265_enc = row("H.265 Enc (100Gbps)").unwrap();
        assert!(t31_enc.energy_pj_per_bit < h264_enc.energy_pj_per_bit);
        assert!(t31_enc.energy_pj_per_bit < h265_enc.energy_pj_per_bit);
        assert!(t31_enc.area_mm2.unwrap() < h264_enc.area_mm2.unwrap());
    }
}
