//! GPU codec-support matrix (the paper's Table 2).
//!
//! Static capability data from the NVIDIA Video Codec SDK matrix the
//! paper cites: which GPU generations provide hardware encode/decode for
//! each codec, and up to what resolution. VP9 is decode-only everywhere,
//! which is why the paper excludes it (LLM.265 needs both directions in
//! hardware).

/// A GPU generation row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// Ada Lovelace (RTX 40).
    AdaLovelace,
    /// Ampere (RTX 30 / A100).
    Ampere,
    /// Volta (V100).
    Volta,
}

impl GpuGeneration {
    /// All generations, newest first (the table's order).
    pub fn all() -> [GpuGeneration; 3] {
        [
            GpuGeneration::AdaLovelace,
            GpuGeneration::Ampere,
            GpuGeneration::Volta,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::AdaLovelace => "Ada Lovelace",
            GpuGeneration::Ampere => "Ampere",
            GpuGeneration::Volta => "Volta",
        }
    }
}

/// A codec column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecStandard {
    H264,
    H265,
    Av1,
    Vp9,
}

impl CodecStandard {
    /// All codecs, in the table's order.
    pub fn all() -> [CodecStandard; 4] {
        [
            CodecStandard::H264,
            CodecStandard::H265,
            CodecStandard::Av1,
            CodecStandard::Vp9,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CodecStandard::H264 => "H.264",
            CodecStandard::H265 => "H.265",
            CodecStandard::Av1 => "AV1",
            CodecStandard::Vp9 => "VP9",
        }
    }
}

/// Hardware support level for one (generation, codec) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// Hardware encode and decode up to this resolution (in "K").
    EncodeDecode(u8),
    /// Hardware decode only, up to this resolution.
    DecodeOnly(u8),
    /// No hardware support.
    None,
}

impl Support {
    /// Table-cell rendering ("8K Enc/Dec.", "8K Dec", "-").
    pub fn label(self) -> String {
        match self {
            Support::EncodeDecode(k) => format!("{k}K Enc/Dec."),
            Support::DecodeOnly(k) => format!("{k}K Dec"),
            Support::None => "-".to_string(),
        }
    }

    /// Whether both directions exist in hardware — the requirement for
    /// LLM.265.
    pub fn usable_for_tensors(self) -> bool {
        matches!(self, Support::EncodeDecode(_))
    }
}

/// The support matrix (Table 2).
pub fn support(gen: GpuGeneration, codec: CodecStandard) -> Support {
    use CodecStandard::*;
    use GpuGeneration::*;
    match (gen, codec) {
        (_, H264) => Support::EncodeDecode(4),
        (_, H265) => Support::EncodeDecode(8),
        (AdaLovelace, Av1) => Support::EncodeDecode(8),
        (_, Av1) => Support::None,
        (_, Vp9) => Support::DecodeOnly(8),
    }
}

/// Codecs usable for LLM.265 on a generation.
pub fn tensor_codecs_for(gen: GpuGeneration) -> Vec<CodecStandard> {
    CodecStandard::all()
        .into_iter()
        .filter(|&c| support(gen, c).usable_for_tensors())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h265_universal_encode_decode() {
        // The paper adopts H.265 because every generation encodes and
        // decodes it, at the highest resolution.
        for gen in GpuGeneration::all() {
            assert_eq!(support(gen, CodecStandard::H265), Support::EncodeDecode(8));
        }
    }

    #[test]
    fn vp9_is_decode_only_everywhere() {
        for gen in GpuGeneration::all() {
            let s = support(gen, CodecStandard::Vp9);
            assert!(!s.usable_for_tensors(), "{}: {:?}", gen.name(), s);
        }
    }

    #[test]
    fn av1_only_on_ada() {
        assert!(support(GpuGeneration::AdaLovelace, CodecStandard::Av1).usable_for_tensors());
        assert_eq!(
            support(GpuGeneration::Ampere, CodecStandard::Av1),
            Support::None
        );
        assert_eq!(
            support(GpuGeneration::Volta, CodecStandard::Av1),
            Support::None
        );
    }

    #[test]
    fn tensor_codec_counts() {
        assert_eq!(tensor_codecs_for(GpuGeneration::AdaLovelace).len(), 3);
        assert_eq!(tensor_codecs_for(GpuGeneration::Ampere).len(), 2);
        assert_eq!(tensor_codecs_for(GpuGeneration::Volta).len(), 2);
    }

    #[test]
    fn labels_render_like_the_paper() {
        assert_eq!(Support::EncodeDecode(8).label(), "8K Enc/Dec.");
        assert_eq!(Support::DecodeOnly(8).label(), "8K Dec");
        assert_eq!(Support::None.label(), "-");
    }
}
