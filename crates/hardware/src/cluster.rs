//! Cluster-level performance and energy model (the paper's Fig 16).
//!
//! §7.2 describes an analytical model: given an LLM configuration and
//! hardware specs, it predicts training step time and power with and
//! without communication compression, sweeping thousands of hardware /
//! parallelism configurations under a total die-area budget and plotting
//! the Pareto frontier of area versus normalized performance. This module
//! is that model.

use crate::area::nic_cx5;
use crate::energy::NCCL_PJ_PER_BIT;

/// The LLM being trained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Total parameters.
    pub params: f64,
    /// Hidden width (for activation volume).
    pub hidden: f64,
    /// Tokens per global batch.
    pub batch_tokens: f64,
}

impl ModelSpec {
    /// A LLaMA-7B-class model. `batch_tokens` is the per-step token count
    /// — per-iteration micro-batching, where the DP gradient exchange
    /// happens every step, which is the regime the paper's communication
    /// analysis targets.
    pub fn llama_7b() -> Self {
        ModelSpec {
            params: 7.0e9,
            hidden: 4096.0,
            batch_tokens: 0.125e6,
        }
    }

    /// A model scaled to `params` parameters with width following the
    /// usual ≈ √(P/12L) heuristic folded into a power law.
    pub fn scaled(params: f64) -> Self {
        ModelSpec {
            params,
            hidden: 4096.0 * (params / 7.0e9).powf(1.0 / 3.0),
            batch_tokens: 0.125e6,
        }
    }
}

/// GPU die characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Sustained training throughput in FLOP/s.
    pub flops: f64,
    /// Die area in mm² (7 nm-normalized).
    pub area_mm2: f64,
    /// Board power in W.
    pub power_w: f64,
    /// Memory capacity in bytes (bounds the model shard per GPU).
    pub memory_bytes: f64,
}

impl GpuSpec {
    /// An A100-class accelerator.
    pub fn a100_class() -> Self {
        GpuSpec {
            flops: 120.0e12,
            area_mm2: 550.0,
            power_w: 400.0,
            memory_bytes: 80.0e9,
        }
    }
}

/// Communication-compression scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Compression {
    /// Display name.
    pub name: String,
    /// Compression ratio on communicated tensors (1.0 = none).
    pub ratio: f64,
    /// Codec throughput per mm² of codec silicon, in GB/s of raw input.
    pub codec_gbps_per_mm2: f64,
    /// Codec energy (enc+dec) per raw bit, pJ.
    pub codec_pj_per_bit: f64,
}

impl Compression {
    /// No compression.
    pub fn none() -> Self {
        Compression {
            name: "Uncompressed".to_string(),
            ratio: 1.0,
            codec_gbps_per_mm2: f64::INFINITY,
            codec_pj_per_bit: 0.0,
        }
    }

    /// NVENC/NVDEC-class: 1.1 GB/s per engine, an engine is ≈ 2 mm², so
    /// ≈ 4.4 Gb/s of raw input per mm². Ratio from the paper's training
    /// experiments (~4.5x at the §4.2 quality point).
    pub fn nvenc() -> Self {
        Compression {
            name: "NVENC/NVDEC".to_string(),
            ratio: 4.5,
            codec_gbps_per_mm2: 4.4,
            codec_pj_per_bit: 167.8 + 154.3,
        }
    }

    /// Three-in-one codec: 100 Gb/s raw input per 1.28 mm² (enc+dec).
    pub fn three_in_one() -> Self {
        Compression {
            name: "Three-in-one".to_string(),
            ratio: 4.5,
            codec_gbps_per_mm2: 100.0 / 1.28,
            codec_pj_per_bit: 97.8 + 63.5,
        }
    }
}

/// One cluster configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of GPUs.
    pub gpus: usize,
    /// Data-parallel ways (`gpus = dp × pp`).
    pub dp: usize,
    /// Pipeline-parallel ways.
    pub pp: usize,
    /// NICs per GPU (each 100 Gb/s, CX5-class area).
    pub nics_per_gpu: usize,
    /// Codec silicon per GPU in mm².
    pub codec_mm2_per_gpu: f64,
}

/// Model evaluation output for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Seconds per global training step.
    pub step_seconds: f64,
    /// Training throughput in tokens/second.
    pub tokens_per_second: f64,
    /// Total die area (GPUs + NICs + codecs) in mm².
    pub total_area_mm2: f64,
    /// Average power in W (compute + communication + codecs).
    pub power_w: f64,
    /// Tokens per joule.
    pub tokens_per_joule: f64,
    /// Fraction of step time spent on (exposed) communication.
    pub comm_fraction: f64,
}

/// Evaluates one configuration of the analytical model.
///
/// # Panics
///
/// Panics if `dp × pp != gpus` or any count is zero.
pub fn evaluate(
    model: &ModelSpec,
    gpu: &GpuSpec,
    comp: &Compression,
    cfg: &ClusterConfig,
) -> Evaluation {
    assert!(
        cfg.gpus > 0 && cfg.dp > 0 && cfg.pp > 0,
        "zero-sized cluster"
    );
    assert_eq!(cfg.dp * cfg.pp, cfg.gpus, "dp*pp must equal gpus");

    // --- Compute time: 6 FLOPs per parameter per token, split over GPUs,
    // inflated by the pipeline bubble (GPipe: (m + pp - 1)/m with m
    // microbatches).
    const MICROBATCHES: f64 = 16.0;
    let flops_per_step = 6.0 * model.params * model.batch_tokens;
    let bubble = (MICROBATCHES + cfg.pp as f64 - 1.0) / MICROBATCHES;
    let t_compute = flops_per_step / (gpu.flops * cfg.gpus as f64) * bubble;

    // --- Communication volumes per step (bytes, FP16 raw).
    // DP all-reduce: 2·(dp−1)/dp of the gradient per replica.
    let dp_bytes_per_gpu = if cfg.dp > 1 {
        2.0 * model.params * 2.0 * (cfg.dp as f64 - 1.0) / cfg.dp as f64 / cfg.pp as f64
    } else {
        0.0
    };
    // PP activations+grads: 2 tensors × batch_tokens × hidden × 2 B,
    // spread over the dp ways, only if pp > 1.
    let pp_bytes_per_gpu = if cfg.pp > 1 {
        2.0 * model.batch_tokens * model.hidden * 2.0 / cfg.dp as f64
    } else {
        0.0
    };
    let raw_bytes = dp_bytes_per_gpu + pp_bytes_per_gpu;

    // --- Communication time per GPU: wire + codec bound.
    let link_bps = cfg.nics_per_gpu as f64 * 100.0e9;
    let wire_time = (raw_bytes / comp.ratio) * 8.0 / link_bps;
    let codec_bps = comp.codec_gbps_per_mm2 * cfg.codec_mm2_per_gpu * 1e9;
    let codec_time = if comp.ratio > 1.0 {
        raw_bytes * 8.0 / codec_bps.max(1.0)
    } else {
        0.0
    };
    let t_comm = wire_time.max(codec_time);

    // --- Overlap: half the communication hides under compute.
    let exposed = (t_comm - 0.5 * t_compute).max(0.0).min(t_comm);
    let step = t_compute + exposed;

    // --- Area.
    let nic_area = nic_cx5().native_area_mm2; // measured die, as in Fig 12
    let total_area = cfg.gpus as f64
        * (gpu.area_mm2 + cfg.nics_per_gpu as f64 * nic_area + cfg.codec_mm2_per_gpu);

    // --- Energy per step.
    let compute_j = cfg.gpus as f64 * gpu.power_w * t_compute;
    let comm_bits = raw_bytes * 8.0 * cfg.gpus as f64;
    let comm_j = comm_bits / comp.ratio * NCCL_PJ_PER_BIT * 1e-12;
    let codec_j = if comp.ratio > 1.0 {
        comm_bits * comp.codec_pj_per_bit * 1e-12
    } else {
        0.0
    };
    let total_j = compute_j + comm_j + codec_j;

    let tokens_per_second = model.batch_tokens / step;
    Evaluation {
        step_seconds: step,
        tokens_per_second,
        total_area_mm2: total_area,
        power_w: total_j / step,
        tokens_per_joule: model.batch_tokens / total_j,
        comm_fraction: exposed / step,
    }
}

/// Sweeps cluster configurations (GPU counts, dp×pp splits, NIC counts,
/// codec areas) and returns every evaluated `(config, evaluation)`.
pub fn sweep(
    model: &ModelSpec,
    gpu: &GpuSpec,
    comp: &Compression,
) -> Vec<(ClusterConfig, Evaluation)> {
    let mut out = Vec::new();
    for &gpus in &[4usize, 8, 16, 32, 64, 128] {
        // Memory feasibility: the model shard must fit (weights + optimizer
        // ≈ 16 bytes/param over the pp ways).
        for pp in [1usize, 2, 4, 8] {
            if gpus % pp != 0 {
                continue;
            }
            let dp = gpus / pp;
            let shard_bytes = model.params * 16.0 / pp as f64;
            if shard_bytes > gpu.memory_bytes {
                continue;
            }
            for nics in [1usize, 2, 4] {
                for codec_mm2 in [0.0, 1.3, 2.6, 13.0] {
                    if comp.ratio > 1.0 && codec_mm2 == 0.0 {
                        continue;
                    }
                    let cfg = ClusterConfig {
                        gpus,
                        dp,
                        pp,
                        nics_per_gpu: nics,
                        codec_mm2_per_gpu: codec_mm2,
                    };
                    let eval = evaluate(model, gpu, comp, &cfg);
                    out.push((cfg, eval));
                }
            }
        }
    }
    out
}

/// Extracts the Pareto frontier of (area, performance): points where no
/// other point has both less area and more tokens/second.
pub fn pareto_frontier(points: &[(ClusterConfig, Evaluation)]) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .map(|(_, e)| (e.total_area_mm2, e.tokens_per_second))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for (area, perf) in pts {
        if perf > best {
            frontier.push((area, perf));
            best = perf;
        }
    }
    frontier
}

/// Interpolated frontier performance at an area budget (None if the
/// budget is below the smallest frontier point).
pub fn frontier_perf_at(frontier: &[(f64, f64)], area_budget: f64) -> Option<f64> {
    let mut best = None;
    for &(area, perf) in frontier {
        if area <= area_budget {
            best = Some(perf);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(gpus: usize, dp: usize, pp: usize) -> ClusterConfig {
        ClusterConfig {
            gpus,
            dp,
            pp,
            nics_per_gpu: 1,
            codec_mm2_per_gpu: 3.9,
        }
    }

    #[test]
    fn more_gpus_more_throughput() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let c = Compression::none();
        let e8 = evaluate(&m, &g, &c, &base_cfg(8, 2, 4));
        let e32 = evaluate(&m, &g, &c, &base_cfg(32, 8, 4));
        assert!(e32.tokens_per_second > e8.tokens_per_second);
        assert!(e32.total_area_mm2 > e8.total_area_mm2);
    }

    #[test]
    fn compression_helps_when_comm_bound() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        // Heavily DP-sharded: gradients dominate; a single 100G NIC chokes.
        let cfg = base_cfg(64, 64, 1);
        let raw = evaluate(&m, &g, &Compression::none(), &cfg);
        let t31 = evaluate(&m, &g, &Compression::three_in_one(), &cfg);
        assert!(
            raw.comm_fraction > 0.2,
            "baseline should be comm-bound: {}",
            raw.comm_fraction
        );
        assert!(
            t31.tokens_per_second > 1.2 * raw.tokens_per_second,
            "three-in-one {} vs raw {}",
            t31.tokens_per_second,
            raw.tokens_per_second
        );
    }

    #[test]
    fn three_in_one_beats_nvenc_at_same_silicon() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let cfg = base_cfg(64, 64, 1);
        let nv = evaluate(&m, &g, &Compression::nvenc(), &cfg);
        let t31 = evaluate(&m, &g, &Compression::three_in_one(), &cfg);
        // Same codec area, but NVENC's low throughput bottlenecks it.
        assert!(t31.tokens_per_second >= nv.tokens_per_second);
    }

    #[test]
    fn sweep_covers_thousands_when_combined() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let total: usize = [
            Compression::none(),
            Compression::nvenc(),
            Compression::three_in_one(),
        ]
        .iter()
        .map(|c| sweep(&m, &g, c).len())
        .sum();
        // The paper tests > 2000 configurations across scenarios; our grid
        // is coarser but must still be substantial.
        assert!(total > 400, "swept {total}");
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let pts = sweep(&m, &g, &Compression::three_in_one());
        let front = pareto_frontier(&pts);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].0 > w[0].0, "areas increase");
            assert!(w[1].1 > w[0].1, "performance increases");
        }
    }

    #[test]
    fn compressed_frontier_dominates_at_fixed_budget() {
        // The Fig 16(a) claim: at a fixed area budget the compressed
        // scenarios outperform the uncompressed one.
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let f_raw = pareto_frontier(&sweep(&m, &g, &Compression::none()));
        let f_t31 = pareto_frontier(&sweep(&m, &g, &Compression::three_in_one()));
        let budget = 50_000.0;
        let raw = frontier_perf_at(&f_raw, budget).expect("budget reachable");
        let t31 = frontier_perf_at(&f_t31, budget).expect("budget reachable");
        assert!(t31 > raw, "t31 {t31} vs raw {raw} at {budget} mm²");
    }

    #[test]
    fn energy_efficiency_gap_grows_with_model_size() {
        // Fig 16(b): larger models need proportionally more GPUs (memory),
        // so per-GPU gradient traffic grows with the parameter count and
        // compression's energy win widens.
        let g = GpuSpec::a100_class();
        let mut gains = Vec::new();
        for (params, gpus) in [(7.0e9, 16usize), (28.0e9, 64), (70.0e9, 160)] {
            let m = ModelSpec::scaled(params);
            let cfg = base_cfg(gpus, gpus, 1);
            let raw = evaluate(&m, &g, &Compression::none(), &cfg);
            let t31 = evaluate(&m, &g, &Compression::three_in_one(), &cfg);
            gains.push(t31.tokens_per_joule / raw.tokens_per_joule);
        }
        assert!(gains[0] > 1.0, "gains {gains:?}");
        assert!(
            gains[2] > gains[1] && gains[1] > gains[0],
            "gains {gains:?}"
        );
    }

    #[test]
    #[should_panic(expected = "dp*pp must equal gpus")]
    fn bad_parallelism_split_panics() {
        let m = ModelSpec::llama_7b();
        let g = GpuSpec::a100_class();
        let _ = evaluate(&m, &g, &Compression::none(), &base_cfg(8, 3, 2));
    }
}
