//! NVENC/NVDEC-style engine throughput model (§6.1 of the paper).
//!
//! We have no GPU video engines here, so their performance envelope is a
//! model calibrated to the paper's measurements: NVENC sustains about
//! 1100 MB/s compressing tensors and NVDEC about 1300 MB/s decompressing,
//! which caps a GPU's compressed-communication bandwidth at the encoder's
//! rate. The end-to-end link model combines engine rates, link bandwidth
//! and compression ratio, pipelined or store-and-forward.

/// A fixed-function codec engine with a sustained byte throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecEngine {
    /// Display name.
    pub name: &'static str,
    /// Sustained encode throughput in MB/s of raw tensor input.
    pub encode_mb_s: f64,
    /// Sustained decode throughput in MB/s of raw tensor output.
    pub decode_mb_s: f64,
}

/// The paper's measured NVENC/NVDEC envelope.
pub fn nvenc_nvdec() -> CodecEngine {
    CodecEngine {
        name: "NVENC/NVDEC",
        encode_mb_s: 1100.0,
        decode_mb_s: 1300.0,
    }
}

/// The proposed three-in-one codec sized for 100 Gb/s of tensor traffic
/// (12.5 GB/s each way).
pub fn three_in_one_engine() -> CodecEngine {
    CodecEngine {
        name: "Three-in-one",
        encode_mb_s: 12_500.0,
        decode_mb_s: 12_500.0,
    }
}

impl CodecEngine {
    /// The compressed-communication bandwidth cap in MB/s — the slowest
    /// pipeline stage bounds the stream (the paper: "limiting the GPU's
    /// end-to-end communication bandwidth to 1100 MB/s").
    pub fn effective_cap_mb_s(&self) -> f64 {
        self.encode_mb_s.min(self.decode_mb_s)
    }
}

/// Time to move `bytes` of raw tensor data over a link of `link_gb_s`
/// GB/s with compression ratio `ratio`, when encode, transfer and decode
/// are pipelined (steady-state: the slowest stage governs).
pub fn pipelined_transfer_seconds(
    bytes: f64,
    ratio: f64,
    engine: &CodecEngine,
    link_gb_s: f64,
) -> f64 {
    assert!(ratio > 0.0 && bytes >= 0.0 && link_gb_s > 0.0);
    let enc = bytes / (engine.encode_mb_s * 1e6);
    let dec = bytes / (engine.decode_mb_s * 1e6);
    let wire = (bytes / ratio) / (link_gb_s * 1e9);
    enc.max(dec).max(wire)
}

/// Same transfer without pipelining (encode, then send, then decode).
pub fn sequential_transfer_seconds(
    bytes: f64,
    ratio: f64,
    engine: &CodecEngine,
    link_gb_s: f64,
) -> f64 {
    assert!(ratio > 0.0 && bytes >= 0.0 && link_gb_s > 0.0);
    bytes / (engine.encode_mb_s * 1e6)
        + (bytes / ratio) / (link_gb_s * 1e9)
        + bytes / (engine.decode_mb_s * 1e6)
}

/// Time to move `bytes` uncompressed.
pub fn raw_transfer_seconds(bytes: f64, link_gb_s: f64) -> f64 {
    assert!(link_gb_s > 0.0);
    bytes / (link_gb_s * 1e9)
}

/// Speedup of compressed over raw transfer (pipelined model).
pub fn compression_speedup(bytes: f64, ratio: f64, engine: &CodecEngine, link_gb_s: f64) -> f64 {
    raw_transfer_seconds(bytes, link_gb_s)
        / pipelined_transfer_seconds(bytes, ratio, engine, link_gb_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvenc_caps_at_encoder_rate() {
        let e = nvenc_nvdec();
        assert_eq!(e.effective_cap_mb_s(), 1100.0);
    }

    #[test]
    fn slow_engine_bottlenecks_fast_link() {
        // On a fast link (25 GB/s NVLink-ish), NVENC is the bottleneck:
        // compression cannot help; it slows the transfer down.
        let e = nvenc_nvdec();
        let speedup = compression_speedup(1e9, 5.0, &e, 25.0);
        assert!(speedup < 1.0, "speedup {speedup}");
    }

    #[test]
    fn slow_link_benefits_from_compression() {
        // On a 0.5 GB/s (4 Gb/s) link — slower than NVENC's 1.1 GB/s — 5x
        // compression wins despite the engine bound.
        let e = nvenc_nvdec();
        let speedup = compression_speedup(1e9, 5.0, &e, 0.5);
        assert!(speedup > 1.5, "speedup {speedup}");
        // The three-in-one engine realizes the full ratio even on 10 Gb/s.
        let s31 = compression_speedup(1e9, 5.0, &three_in_one_engine(), 1.25);
        assert!((s31 - 5.0).abs() < 1e-9, "s31 {s31}");
    }

    #[test]
    fn pipelined_never_slower_than_sequential() {
        let e = nvenc_nvdec();
        for &(bytes, ratio, link) in &[(1e8, 3.0, 1.25), (1e9, 8.0, 12.5), (1e7, 1.5, 0.125)] {
            let p = pipelined_transfer_seconds(bytes, ratio, &e, link);
            let s = sequential_transfer_seconds(bytes, ratio, &e, link);
            assert!(p <= s + 1e-12, "pipelined {p} sequential {s}");
        }
    }

    #[test]
    fn paper_bandwidth_cap_reproduced() {
        // With infinite ratio and link, throughput is encoder-bound:
        // 1 GB moves in 1/1.1 s → ~1100 MB/s end to end.
        let e = nvenc_nvdec();
        let t = pipelined_transfer_seconds(1.1e9, 1e9, &e, 1e6);
        assert!((t - 1.0).abs() < 1e-9, "t {t}");
    }

    #[test]
    fn raw_transfer_math() {
        assert!((raw_transfer_seconds(12.5e9, 12.5) - 1.0).abs() < 1e-12);
    }
}
