//! Analytical hardware models for the LLM.265 reproduction.
//!
//! §6–7 of the paper evaluate the *silicon* side of the idea: how big and
//! how power-hungry video-codec hardware is compared to GPUs/NICs/CPUs
//! (Fig 12), what encoding/decoding costs per bit versus transmitting a
//! bit (Table 3), what a tensor-specialized "three-in-one" codec saves,
//! and how communication compression changes cluster-level performance
//! and energy (Fig 15, Fig 16). The paper's own numbers come from an
//! analytical flow (synthesize one RTL instance, normalize throughput,
//! scale the process node); since we cannot run Synopsys here, this crate
//! reimplements that flow with per-component constants calibrated to the
//! paper's reported figures (see DESIGN.md's substitution table).
//!
//! - [`area`] — die-area model: codec component breakdowns, reference
//!   dies (GPU / NIC / CPU), process-node density scaling, throughput
//!   normalization.
//! - [`energy`] — Table 3's power / area / energy-per-bit table and the
//!   derived compression-vs-communication energy ratios.
//! - [`engine`] — NVENC/NVDEC-style engine throughput model and the
//!   end-to-end compressed-link model.
//! - [`gpu_support`] — Table 2's GPU codec-support matrix.
//! - [`three_in_one`] — the proposed tensor/image/video codec.
//! - [`cluster`] — the distributed-training performance and energy model
//!   behind Fig 16.

#![forbid(unsafe_code)]

pub mod area;
pub mod cluster;
pub mod energy;
pub mod engine;
pub mod gpu_support;
pub mod three_in_one;
