//! The three-in-one codec model (§7 of the paper).
//!
//! The proposed design takes the H.264 codec, keeps the intra-frame
//! pipeline as a **shared pipeline** scaled to 100 Gb/s of tensor
//! throughput, keeps a slimmer video-specific path (inter prediction +
//! motion estimation) sized for 8K60, adds a data-type conversion and
//! alignment front-end (FP16/BF16/micro-scaling → 8 bit), and supports
//! the AVC image format by reusing the intra path. This module models the
//! area/power budget of that design and the Fig 15 system-level
//! comparison (codec + NIC area / energy for 100 Gb/s effective
//! bandwidth).

use crate::area::{nic_cx5, CodecBlock, Component};
use crate::energy;

/// Operating modes of the three-in-one codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Tensor compression (alignment + shared pipeline; video path idle).
    Tensor,
    /// Image coding (shared pipeline only).
    Image,
    /// Video coding (shared + video-specific pipeline).
    Video,
}

/// The three-in-one codec's area/power budget, split by sub-block.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeInOne {
    /// Total encoder area (mm² at 7 nm): 0.70 per Table 3.
    pub enc_area_mm2: f64,
    /// Total decoder area: 0.58.
    pub dec_area_mm2: f64,
    /// Encoder power at 100 Gb/s tensor throughput: 0.78 W.
    pub enc_power_w: f64,
    /// Decoder power: 0.58 W.
    pub dec_power_w: f64,
    /// Fraction of the encoder taken by the shared pipeline (the paper:
    /// 80%).
    pub shared_fraction: f64,
    /// Fraction taken by the data-type conversion/alignment unit.
    pub align_fraction: f64,
}

impl Default for ThreeInOne {
    fn default() -> Self {
        ThreeInOne {
            enc_area_mm2: 0.70,
            dec_area_mm2: 0.58,
            enc_power_w: 0.78,
            dec_power_w: 0.58,
            shared_fraction: 0.80,
            align_fraction: 0.06,
        }
    }
}

impl ThreeInOne {
    /// The paper's design point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Area of the video-specific pipeline (what tensor workloads leave
    /// idle).
    pub fn video_only_area(&self) -> f64 {
        self.enc_area_mm2 * (1.0 - self.shared_fraction - self.align_fraction)
    }

    /// Which sub-blocks a workload activates, as a fraction of encoder
    /// area (utilization proxy).
    pub fn active_fraction(&self, w: Workload) -> f64 {
        match w {
            Workload::Tensor => self.shared_fraction + self.align_fraction,
            Workload::Image => self.shared_fraction,
            Workload::Video => 1.0 - self.align_fraction,
        }
    }

    /// Combined enc+dec energy per bit (pJ), from Table 3.
    pub fn codec_pj_per_bit(&self) -> f64 {
        97.8 + 63.5
    }

    /// Total enc+dec area.
    pub fn total_area_mm2(&self) -> f64 {
        self.enc_area_mm2 + self.dec_area_mm2
    }
}

/// Static partitioning of the shared pipeline between concurrent
/// multimedia and tensor workloads (§7: "the shared pipeline is
/// statically partitioned for both workloads by software", with
/// latency-sensitive multimedia given priority and throughput-oriented
/// tensor traffic taking the remainder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedPipelineSchedule {
    /// Fraction of shared-pipeline throughput reserved for multimedia.
    video_share: f64,
}

impl SharedPipelineSchedule {
    /// Creates a schedule reserving `video_share` of the shared pipeline
    /// for multimedia (clamped to `[0, 1]`).
    pub fn new(video_share: f64) -> Self {
        SharedPipelineSchedule {
            video_share: video_share.clamp(0.0, 1.0),
        }
    }

    /// The reservation needed to sustain a given video workload, as a
    /// fraction of the pipeline sized for `design_gbps` of tensor
    /// throughput. An 8K60 stream consumes ~8 Gb/s of the shared
    /// pipeline's input bandwidth.
    pub fn for_video_streams(streams_8k60: u32, design_gbps: f64) -> Self {
        assert!(design_gbps > 0.0, "design throughput must be positive");
        let video_gbps = streams_8k60 as f64 * 7960.0 / 1000.0; // 7680×4320×60×8b
        Self::new(video_gbps / design_gbps)
    }

    /// Fraction reserved for multimedia.
    pub fn video_share(&self) -> f64 {
        self.video_share
    }

    /// Effective tensor throughput (Gb/s) left over from a pipeline
    /// designed for `design_gbps`, after the multimedia reservation.
    pub fn tensor_gbps(&self, design_gbps: f64) -> f64 {
        design_gbps * (1.0 - self.video_share)
    }
}

/// One contender in the Fig 15 comparison: a codec design with its area
/// and its *information efficiency* (compression ratio achieved at the
/// experiment's quality point).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemContender {
    /// Display name.
    pub name: String,
    /// Codec area (enc + dec) in mm² at 100 Gb/s.
    pub codec_area_mm2: f64,
    /// Enc+dec energy per raw bit in pJ.
    pub codec_pj_per_bit: f64,
    /// Compression ratio at the common quality point.
    pub ratio: f64,
}

impl SystemContender {
    /// Total system area (codec + NICs) to sustain `effective_gbps` of
    /// *raw tensor* bandwidth: compression shrinks the NIC provisioning by
    /// the ratio (the paper's point — the NIC is the dominant cost and
    /// information efficiency shrinks it).
    pub fn system_area_mm2(&self, effective_gbps: f64) -> f64 {
        let nic_area = nic_cx5().native_area_mm2; // measured die, as in Fig 12
        let nics = (effective_gbps / self.ratio / 100.0).ceil().max(1.0);
        self.codec_area_mm2 + nics * nic_area
    }

    /// Energy in joules to communicate `raw_bits` of tensor data.
    pub fn transfer_energy_j(&self, raw_bits: u64) -> f64 {
        energy::compressed_transfer_energy_j(
            raw_bits,
            self.ratio,
            self.codec_pj_per_bit / 2.0,
            self.codec_pj_per_bit / 2.0,
        )
    }
}

/// The uncompressed baseline for Fig 15.
pub fn uncompressed_contender() -> SystemContender {
    SystemContender {
        name: "Uncompressed".to_string(),
        codec_area_mm2: 0.0,
        codec_pj_per_bit: 0.0,
        ratio: 1.0,
    }
}

/// Builds the three-in-one contender at a measured compression ratio.
pub fn three_in_one_contender(ratio: f64) -> SystemContender {
    let t = ThreeInOne::new();
    SystemContender {
        name: "Three-in-one".to_string(),
        codec_area_mm2: t.total_area_mm2(),
        codec_pj_per_bit: t.codec_pj_per_bit(),
        ratio,
    }
}

/// Builds a chained-codec contender (Fig 15's H./D./L./C. bars) from a
/// hardware block and its measured ratio.
pub fn chained_contender(name: &str, block: &CodecBlock, ratio: f64) -> SystemContender {
    SystemContender {
        name: name.to_string(),
        codec_area_mm2: block.area_mm2,
        codec_pj_per_bit: block.power_w / 100.0e9 * 1e12 * 2.0, // P/tput, enc+dec
        ratio,
    }
}

/// Area/power of lossless-compressor hardware blocks at 100 Gb/s, for the
/// chained baselines of Fig 15 (calibrated to published accelerator
/// implementations: CABAC from video-codec entropy stages, Huffman and
/// LZ-family from memory-compression designs).
pub fn lossless_hw_block(name: &'static str) -> CodecBlock {
    let (area, power) = match name {
        "Huffman" => (0.55, 0.50),
        "Deflate" => (1.40, 1.30),
        "LZ4" => (0.80, 0.70),
        "CABAC" => (0.90, 0.95),
        _ => panic!("unknown lossless block {name}"),
    };
    CodecBlock {
        name,
        area_mm2: area,
        power_w: power,
        fractions: vec![(Component::Entropy, 0.8), (Component::Control, 0.2)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pipeline_dominates() {
        let t = ThreeInOne::new();
        assert!((t.shared_fraction - 0.80).abs() < 1e-9);
        assert!(t.video_only_area() < 0.2 * t.enc_area_mm2);
        assert!(t.active_fraction(Workload::Tensor) > t.active_fraction(Workload::Image));
        assert!(t.active_fraction(Workload::Video) > t.active_fraction(Workload::Tensor));
    }

    #[test]
    fn cheaper_than_both_h26x_pairs() {
        let t = ThreeInOne::new();
        // vs H.264 pair (0.96 + 0.97) and H.265 pair (11.7 + 2.1).
        assert!(t.total_area_mm2() < 0.96 + 0.97);
        assert!(t.total_area_mm2() < 11.7 + 2.1);
        assert!(t.enc_power_w + t.dec_power_w < 1.1 + 1.0);
    }

    #[test]
    fn system_area_shrinks_with_ratio() {
        // 500 Gb/s effective raw bandwidth.
        let base = uncompressed_contender().system_area_mm2(500.0);
        let comp = three_in_one_contender(5.0).system_area_mm2(500.0);
        assert!(comp < base / 3.0, "compressed {comp} vs raw {base}");
    }

    #[test]
    fn at_least_one_nic_always() {
        let c = three_in_one_contender(100.0);
        let a = c.system_area_mm2(100.0);
        assert!(a > nic_cx5().area_at_7nm());
    }

    #[test]
    fn transfer_energy_beats_uncompressed_at_good_ratio() {
        let raw = uncompressed_contender().transfer_energy_j(1 << 33);
        let comp = three_in_one_contender(5.0).transfer_energy_j(1 << 33);
        assert!(comp < raw / 3.0, "comp {comp} raw {raw}");
    }

    #[test]
    fn lossless_blocks_exist_and_are_small() {
        for name in ["Huffman", "Deflate", "LZ4", "CABAC"] {
            let b = lossless_hw_block(name);
            assert!(b.area_mm2 < 2.0);
            assert!(b.power_w < 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown lossless block")]
    fn unknown_lossless_block_panics() {
        let _ = lossless_hw_block("zstd");
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;

    #[test]
    fn video_reservation_reduces_tensor_throughput() {
        let idle = SharedPipelineSchedule::new(0.0);
        assert_eq!(idle.tensor_gbps(100.0), 100.0);
        let busy = SharedPipelineSchedule::for_video_streams(1, 100.0);
        // One 8K60 stream ≈ 8 Gb/s of the 100 Gb/s pipeline.
        assert!(
            (busy.video_share() - 0.0796).abs() < 1e-3,
            "{}",
            busy.video_share()
        );
        assert!((busy.tensor_gbps(100.0) - 92.04).abs() < 0.1);
    }

    #[test]
    fn schedule_saturates_at_full_reservation() {
        let over = SharedPipelineSchedule::for_video_streams(20, 100.0);
        assert_eq!(over.video_share(), 1.0);
        assert_eq!(over.tensor_gbps(100.0), 0.0);
        let neg = SharedPipelineSchedule::new(-0.5);
        assert_eq!(neg.video_share(), 0.0);
    }
}
