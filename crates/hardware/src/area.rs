//! Die-area model (the paper's Fig 12).
//!
//! The paper synthesizes open-source H.264/H.265 RTL to ASAP7, normalizes
//! every codec to 100 Gb/s of tensor throughput by replicating instances,
//! and compares the result against the dies that dominate an LLM
//! datacenter. We reproduce the arithmetic of that flow: published
//! transistor densities give the node-scaling rule (the paper's
//! 628 mm² → 398 mm² RTX 3090 rescale checks out against it), instance
//! counts come from per-instance pixel throughput, and the per-component
//! area fractions are calibrated to the paper's reported layouts
//! (inter-frame prediction and the frame buffer dominating).

/// Logic transistor density in MTr/mm² per process node (published
/// foundry figures; 7 nm is the ASAP7-equivalent target node).
pub fn density_mtr_per_mm2(node_nm: u32) -> Option<f64> {
    match node_nm {
        16 => Some(28.9),
        12 => Some(33.8),
        10 => Some(51.8),
        8 => Some(61.2),
        7 => Some(96.5),
        5 => Some(173.1),
        _ => None,
    }
}

/// Scales a die area between process nodes by transistor-density ratio.
///
/// # Panics
///
/// Panics if either node is unknown.
pub fn scale_area(area_mm2: f64, from_nm: u32, to_nm: u32) -> f64 {
    let from = density_mtr_per_mm2(from_nm).expect("unknown source node");
    let to = density_mtr_per_mm2(to_nm).expect("unknown target node");
    area_mm2 * from / to
}

/// A pipeline component of a video codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Intra-frame prediction logic.
    IntraPrediction,
    /// Inter-frame prediction incl. motion estimation/compensation.
    InterPrediction,
    /// Reference frame buffer (SRAM).
    FrameBuffer,
    /// Forward/inverse transform and quantization.
    Transform,
    /// Entropy coder (CABAC/CAVLC).
    Entropy,
    /// Rate control, bitstream packing, glue.
    Control,
}

impl Component {
    /// All components, in display order.
    pub fn all() -> [Component; 6] {
        [
            Component::IntraPrediction,
            Component::InterPrediction,
            Component::FrameBuffer,
            Component::Transform,
            Component::Entropy,
            Component::Control,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::IntraPrediction => "intra prediction",
            Component::InterPrediction => "inter prediction",
            Component::FrameBuffer => "frame buffer",
            Component::Transform => "transform+quant",
            Component::Entropy => "entropy coder",
            Component::Control => "control/misc",
        }
    }

    /// Whether the tensor path needs this component (the paper's §6.2
    /// observation: dropping inter prediction also shrinks the frame
    /// buffer, because no reference frames need to be retained).
    pub fn needed_for_tensors(self) -> bool {
        !matches!(self, Component::InterPrediction)
    }
}

/// One codec hardware block: total area/power at 7 nm for 100 Gb/s of
/// tensor throughput, plus its component fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecBlock {
    /// Display name.
    pub name: &'static str,
    /// Die area in mm² at 7 nm, normalized to 100 Gb/s.
    pub area_mm2: f64,
    /// Power in W at that throughput.
    pub power_w: f64,
    /// Area fraction per component (sums to 1).
    pub fractions: Vec<(Component, f64)>,
}

impl CodecBlock {
    /// Area of one component in mm².
    pub fn component_area(&self, c: Component) -> f64 {
        self.fractions
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, f)| f * self.area_mm2)
            .unwrap_or(0.0)
    }

    /// Area remaining if the block is stripped to its tensor-relevant
    /// components (inter prediction removed; the frame buffer shrinks to
    /// the paper's single-frame working set, modeled as 25% of its full
    /// size).
    pub fn tensor_only_area(&self) -> f64 {
        self.fractions
            .iter()
            .map(|&(c, f)| match c {
                Component::InterPrediction => 0.0,
                Component::FrameBuffer => 0.25 * f * self.area_mm2,
                _ => f * self.area_mm2,
            })
            .sum()
    }
}

/// H.264 encoder block (Table 3 row: 0.96 mm², 1.1 W @ 100 Gb/s).
pub fn h264_encoder() -> CodecBlock {
    CodecBlock {
        name: "H.264 Enc",
        area_mm2: 0.96,
        power_w: 1.1,
        fractions: vec![
            (Component::IntraPrediction, 0.13),
            (Component::InterPrediction, 0.34),
            (Component::FrameBuffer, 0.22),
            (Component::Transform, 0.11),
            (Component::Entropy, 0.09),
            (Component::Control, 0.11),
        ],
    }
}

/// H.264 decoder block (0.97 mm², 1.0 W @ 100 Gb/s).
pub fn h264_decoder() -> CodecBlock {
    CodecBlock {
        name: "H.264 Dec",
        area_mm2: 0.97,
        power_w: 1.0,
        fractions: vec![
            (Component::IntraPrediction, 0.12),
            (Component::InterPrediction, 0.26),
            (Component::FrameBuffer, 0.30),
            (Component::Transform, 0.12),
            (Component::Entropy, 0.10),
            (Component::Control, 0.10),
        ],
    }
}

/// H.265 encoder block (11.7 mm², 11.0 W @ 100 Gb/s).
pub fn h265_encoder() -> CodecBlock {
    CodecBlock {
        name: "H.265 Enc",
        area_mm2: 11.7,
        power_w: 11.0,
        fractions: vec![
            (Component::IntraPrediction, 0.14),
            (Component::InterPrediction, 0.38),
            (Component::FrameBuffer, 0.21),
            (Component::Transform, 0.10),
            (Component::Entropy, 0.07),
            (Component::Control, 0.10),
        ],
    }
}

/// H.265 decoder block (2.1 mm², 4.3 W @ 100 Gb/s).
pub fn h265_decoder() -> CodecBlock {
    CodecBlock {
        name: "H.265 Dec",
        area_mm2: 2.1,
        power_w: 4.3,
        fractions: vec![
            (Component::IntraPrediction, 0.13),
            (Component::InterPrediction, 0.24),
            (Component::FrameBuffer, 0.32),
            (Component::Transform, 0.11),
            (Component::Entropy, 0.09),
            (Component::Control, 0.11),
        ],
    }
}

/// A reference die for the Fig 12 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceDie {
    /// Display name.
    pub name: &'static str,
    /// Area in mm² at its native node.
    pub native_area_mm2: f64,
    /// Native process node in nm.
    pub native_node_nm: u32,
}

impl ReferenceDie {
    /// Area scaled to 7 nm.
    pub fn area_at_7nm(&self) -> f64 {
        scale_area(self.native_area_mm2, self.native_node_nm, 7)
    }
}

/// RTX 3090 GPU die (628 mm² at Samsung 8 nm; the paper's 7 nm rescale is
/// ≈ 398 mm²).
pub fn gpu_rtx3090() -> ReferenceDie {
    ReferenceDie {
        name: "GPU (RTX 3090)",
        native_area_mm2: 628.0,
        native_node_nm: 8,
    }
}

/// Mellanox ConnectX-5 100 Gb/s NIC die (direct measurement in the paper:
/// 12.14 mm × 13.98 mm = 169.7 mm², 16 nm-class process).
pub fn nic_cx5() -> ReferenceDie {
    ReferenceDie {
        name: "NIC (CX5 100G)",
        native_area_mm2: 169.7,
        native_node_nm: 16,
    }
}

/// A server CPU compute die (8-chiplet 7 nm server part, 8 × 74 mm²
/// core dies; IO die excluded).
pub fn cpu_server() -> ReferenceDie {
    ReferenceDie {
        name: "CPU (server)",
        native_area_mm2: 592.0,
        native_node_nm: 7,
    }
}

/// Instances needed to reach a target throughput given per-instance
/// throughput (the paper's "multiple instances combined for 100 Gb/s").
pub fn instances_for(target_gbps: f64, per_instance_gbps: f64) -> u32 {
    assert!(
        per_instance_gbps > 0.0,
        "instance throughput must be positive"
    );
    (target_gbps / per_instance_gbps).ceil().max(1.0) as u32
}

/// Input throughput of a single 4K60 8-bit codec instance, in Gb/s
/// (3840 × 2160 × 60 Hz × 8 bit ≈ 4 Gb/s).
pub fn single_instance_4k60_gbps() -> f64 {
    3840.0 * 2160.0 * 60.0 * 8.0 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_matches_papers_gpu_rescale() {
        // 628 mm² at 8 nm → ≈ 398 mm² at 7 nm (the paper's number).
        let scaled = gpu_rtx3090().area_at_7nm();
        assert!((scaled - 398.0).abs() < 5.0, "scaled {scaled}");
    }

    #[test]
    fn fractions_sum_to_one() {
        for block in [
            h264_encoder(),
            h264_decoder(),
            h265_encoder(),
            h265_decoder(),
        ] {
            let sum: f64 = block.fractions.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", block.name);
        }
    }

    #[test]
    fn codecs_are_tiny_next_to_gpu_and_nic() {
        // Paper: H.264 enc+dec < 2 mm² — 199x under the GPU, 88x under the NIC.
        let pair = h264_encoder().area_mm2 + h264_decoder().area_mm2;
        assert!(pair < 2.0);
        let gpu = gpu_rtx3090().area_at_7nm();
        let nic = nic_cx5().area_at_7nm();
        assert!(gpu / pair > 150.0, "gpu/codec {}", gpu / pair);
        assert!(nic / pair > 20.0, "nic/codec {}", nic / pair);
    }

    #[test]
    fn inter_and_frame_buffer_dominate() {
        // The paper's §6.2 observation that motivates removing them.
        for block in [h264_encoder(), h265_encoder()] {
            let inter = block.component_area(Component::InterPrediction);
            let buf = block.component_area(Component::FrameBuffer);
            assert!(
                (inter + buf) / block.area_mm2 > 0.5,
                "{}: inter+buffer fraction {}",
                block.name,
                (inter + buf) / block.area_mm2
            );
        }
    }

    #[test]
    fn tensor_only_area_saves_meaningfully() {
        for block in [
            h264_encoder(),
            h264_decoder(),
            h265_encoder(),
            h265_decoder(),
        ] {
            let stripped = block.tensor_only_area();
            assert!(stripped < 0.6 * block.area_mm2, "{}", block.name);
            assert!(stripped > 0.2 * block.area_mm2, "{}", block.name);
        }
    }

    #[test]
    fn instance_math() {
        assert_eq!(instances_for(100.0, 4.0), 25);
        assert_eq!(instances_for(3.0, 4.0), 1);
        let g = single_instance_4k60_gbps();
        assert!((g - 3.98).abs() < 0.05, "4K60 throughput {g}");
        // ~25 instances for 100 Gb/s, as the paper's normalization implies.
        assert_eq!(instances_for(100.0, g), 26);
    }

    #[test]
    fn needed_for_tensors_excludes_only_inter() {
        let needed: Vec<_> = Component::all()
            .into_iter()
            .filter(|c| c.needed_for_tensors())
            .collect();
        assert_eq!(needed.len(), 5);
        assert!(!Component::InterPrediction.needed_for_tensors());
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn unknown_node_panics() {
        let _ = scale_area(100.0, 3, 7);
    }
}
