//! Entropy-coder throughput benchmarks (the lossless stages of the Fig 14
//! baseline grid plus our CABAC core).
//!
//! Run with `cargo bench -p llm265-bench --features bench-harness`.

use llm265_bench::microbench::Group;
use llm265_bitstream::{deflate::Deflate, huffman::Huffman, lz4::Lz4, ByteCodec, CabacBytes};
use llm265_tensor::rng::Pcg32;

/// Quantized-gradient-like byte stream: centered, bell-shaped symbols.
fn symbol_stream(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Pcg32::seed_from(seed);
    (0..n)
        .map(|_| (128.0 + 18.0 * rng.normal()).clamp(0.0, 255.0) as u8)
        .collect()
}

fn main() {
    let data = symbol_stream(1 << 16, 1);
    let codecs: Vec<Box<dyn ByteCodec>> = vec![
        Box::new(Huffman),
        Box::new(Deflate),
        Box::new(Lz4),
        Box::new(CabacBytes),
    ];

    let mut g = Group::new("lossless_compress", 20);
    g.throughput_bytes(data.len() as u64);
    for codec in &codecs {
        g.bench(codec.name(), || codec.compress(&data));
    }
    g.finish();

    let mut g = Group::new("lossless_decompress", 20);
    g.throughput_bytes(data.len() as u64);
    for codec in &codecs {
        let packed = codec.compress(&data);
        g.bench(codec.name(), || {
            codec.decompress(&packed).expect("bench stream decodes")
        });
    }
    g.finish();
}
