//! Baseline quantizer throughput benchmarks.
//!
//! Run with `cargo bench -p llm265-bench --features bench-harness`.

use llm265_bench::microbench::Group;
use llm265_quant::mxfp::{MxFormat, MxfpQuantizer};
use llm265_quant::nf4::Nf4Quantizer;
use llm265_quant::rotation::RotationQuantizer;
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};

fn main() {
    let mut rng = Pcg32::seed_from(1);
    let w = llm_weight(256, 256, &WeightProfile::default(), &mut rng);
    let bytes = (w.len() * 4) as u64;

    let mut g = Group::new("quantizers", 20);
    g.throughput_bytes(bytes);
    let rtn = RtnQuantizer::symmetric(4, GroupScheme::Groups(128));
    g.bench("rtn4_128g", || rtn.apply(&w));
    let mx = MxfpQuantizer::new(MxFormat::Mxfp6);
    g.bench("mxfp6", || mx.apply(&w));
    let nf4 = Nf4Quantizer::new();
    g.bench("nf4", || nf4.apply(&w));
    let rot = RotationQuantizer::quarot(4, 128, 7);
    g.bench("quarot4", || rot.apply(&w));
    g.finish();
}
