//! Baseline quantizer throughput benchmarks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use llm265_quant::mxfp::{MxFormat, MxfpQuantizer};
use llm265_quant::nf4::Nf4Quantizer;
use llm265_quant::rotation::RotationQuantizer;
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};

fn bench_quantizers(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(1);
    let w = llm_weight(256, 256, &WeightProfile::default(), &mut rng);
    let bytes = (w.len() * 4) as u64;

    let mut g = c.benchmark_group("quantizers");
    g.throughput(Throughput::Bytes(bytes));
    let rtn = RtnQuantizer::symmetric(4, GroupScheme::Groups(128));
    g.bench_function("rtn4_128g", |b| b.iter(|| rtn.apply(&w)));
    let mx = MxfpQuantizer::new(MxFormat::Mxfp6);
    g.bench_function("mxfp6", |b| b.iter(|| mx.apply(&w)));
    let nf4 = Nf4Quantizer::new();
    g.bench_function("nf4", |b| b.iter(|| nf4.apply(&w)));
    let rot = RotationQuantizer::quarot(4, 128, 7);
    g.bench_function("quarot4", |b| b.iter(|| rot.apply(&w)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantizers
}
criterion_main!(benches);
