//! Software codec throughput benchmarks (§6.1 context).
//!
//! The paper measures NVENC at ~1100 MB/s and NVDEC at ~1300 MB/s on
//! tensors. Our software codec is orders of magnitude slower (it is a
//! reference implementation, not silicon); these benches put an exact
//! number on it, and the `hardware::engine` model carries the calibrated
//! NVENC/NVDEC envelope for the system-level results.
//!
//! Run with `cargo bench -p llm265-bench --features bench-harness`.

use llm265_bench::microbench::Group;
use llm265_core::{Llm265Codec, RateTarget, TensorCodec};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame};

fn weight_frame(n: usize, seed: u64) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
    let (lo, hi) = w.min_max();
    let scale = (hi - lo).max(1e-9) / 255.0;
    Frame::from_fn(n, n, |x, y| {
        (((w[(y, x)] - lo) / scale) as i32).clamp(0, 255) as u8
    })
}

fn main() {
    let mut g = Group::new("videocodec_encode", 10);
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 1);
        let cfg = CodecConfig::default().with_qp(30.0);
        g.throughput_bytes((n * n) as u64);
        g.bench(&format!("{n}x{n}_qp30"), || {
            encode_video(std::slice::from_ref(&frame), &cfg)
        });
    }
    g.finish();

    let mut g = Group::new("videocodec_decode", 10);
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 2);
        let cfg = CodecConfig::default().with_qp(30.0);
        let enc = encode_video(std::slice::from_ref(&frame), &cfg);
        g.throughput_bytes((n * n) as u64);
        g.bench(&format!("{n}x{n}_qp30"), || {
            decode_video(&enc.bytes).expect("bench stream decodes")
        });
    }
    g.finish();

    let mut g = Group::new("llm265_tensor_codec", 10);
    let mut rng = Pcg32::seed_from(3);
    let w = llm_weight(96, 96, &WeightProfile::default(), &mut rng);
    let codec = Llm265Codec::new();
    g.throughput_bytes((w.len() * 4) as u64);
    g.bench("encode_qp_fixed", || {
        codec
            .encode(&w, RateTarget::Qp(30.0))
            .expect("bench encode succeeds")
    });
    let enc = codec
        .encode(&w, RateTarget::Qp(30.0))
        .expect("bench encode succeeds");
    g.bench("decode", || {
        codec.decode(&enc).expect("bench stream decodes")
    });
    g.bench("encode_bits_target", || {
        codec
            .encode(&w, RateTarget::BitsPerValue(3.0))
            .expect("bench encode succeeds")
    });
    g.finish();
}
