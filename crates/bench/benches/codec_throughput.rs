//! Software codec throughput benchmarks (§6.1 context).
//!
//! The paper measures NVENC at ~1100 MB/s and NVDEC at ~1300 MB/s on
//! tensors. Our software codec is orders of magnitude slower (it is a
//! reference implementation, not silicon); these benches put an exact
//! number on it, and the `hardware::engine` model carries the calibrated
//! NVENC/NVDEC envelope for the system-level results.
//!
//! Run with `cargo bench -p llm265-bench --features bench-harness`.
//!
//! Flags (after `--`):
//!
//! - `--json <path>` — also record the tensor-codec samples into the
//!   repo's perf-trajectory document (`BENCH_codec.json`), creating it or
//!   appending a run. Regressions then show up as diffs, not folklore.
//! - `--label <name>` — run label in the JSON trajectory (e.g.
//!   `after-parallel`, `ci-smoke`). Defaults to `run`.
//! - `--samples <n>` — timing samples per benchmark (default 5).
//!
//! `LLM265_THREADS` overrides the multi-threaded data point's worker
//! count (`0`/unset = the machine's available parallelism). The codec
//! output is bit-identical at every thread count, so thread count is
//! purely a throughput knob here.

use std::path::{Path, PathBuf};

use llm265_bench::json::{self, BenchRun, HardwareTargets, ThreadedSample};
use llm265_bench::microbench::Group;
use llm265_core::{Llm265Codec, Llm265Config, RateTarget, TensorCodec};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_tensor::Tensor;
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame};

/// The NVENC/NVDEC tensor-throughput envelope from the paper, carried in
/// the JSON header so every trajectory entry is read against it.
const HARDWARE: HardwareTargets = HardwareTargets {
    encode_mb_s: 1100.0,
    decode_mb_s: 1300.0,
};

struct Args {
    json: Option<PathBuf>,
    label: String,
    samples: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        json: None,
        label: "run".to_string(),
        samples: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            // `cargo bench` appends `--bench` to the harness's argv.
            "--bench" => {}
            "--json" => args.json = Some(PathBuf::from(value("--json"))),
            "--label" => args.label = value("--label"),
            "--samples" => {
                args.samples = value("--samples").parse().unwrap_or_else(|_| {
                    eprintln!("--samples needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: codec_throughput [--json <path>] [--label <name>] [--samples <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Worker count for the parallel data point: `LLM265_THREADS` if set and
/// non-zero, otherwise the machine's available parallelism.
fn parallel_threads() -> usize {
    std::env::var("LLM265_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

fn weight(seed: u64, n: usize) -> Tensor {
    let mut rng = Pcg32::seed_from(seed);
    llm_weight(n, n, &WeightProfile::default(), &mut rng)
}

fn weight_frame(n: usize, seed: u64) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
    let (lo, hi) = w.min_max();
    let scale = (hi - lo).max(1e-9) / 255.0;
    Frame::from_fn(n, n, |x, y| {
        (((w[(y, x)] - lo) / scale) as i32).clamp(0, 255) as u8
    })
}

fn codec_with(max_chunk_pixels: usize, threads: usize) -> Llm265Codec {
    Llm265Codec::with_config(Llm265Config {
        max_chunk_pixels,
        threads,
        ..Llm265Config::default()
    })
}

fn main() {
    let args = parse_args();
    let max_threads = parallel_threads();
    // 1 thread always (the serial baseline every trajectory entry shares),
    // plus one parallel point when the machine has more to give.
    let thread_counts: Vec<usize> = if max_threads > 1 {
        vec![1, max_threads]
    } else {
        vec![1]
    };

    // Frame-level videocodec numbers (console only — thread count does
    // not apply; frames are encoded one CTU row at a time).
    let mut g = Group::new("videocodec_encode", args.samples);
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 1);
        let cfg = CodecConfig::default().with_qp(30.0);
        g.throughput_bytes((n * n) as u64);
        g.bench(&format!("{n}x{n}_qp30"), || {
            encode_video(std::slice::from_ref(&frame), &cfg)
        });
    }
    g.finish();

    let mut g = Group::new("videocodec_decode", args.samples);
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 2);
        let cfg = CodecConfig::default().with_qp(30.0);
        let enc = encode_video(std::slice::from_ref(&frame), &cfg);
        g.throughput_bytes((n * n) as u64);
        g.bench(&format!("{n}x{n}_qp30"), || {
            decode_video(&enc.bytes).expect("bench stream decodes")
        });
    }
    g.finish();

    // Tensor-codec trajectory samples — the names match earlier runs in
    // BENCH_codec.json so the before/after diff lines up sample by sample.
    let mut samples: Vec<ThreadedSample> = Vec::new();

    // Multi-chunk tensor: 256x256 (1 MB of f32), 8 chunks of 32 rows —
    // the chunk-parallel fan-out target.
    let big = weight(11, 256);
    // Single-chunk tensor: no fan-out possible; isolates the scratch-reuse
    // and per-block wins.
    let mid = weight(7, 128);
    // Rate-search tensor: 4 chunks; dominated by how many QPs the search
    // probes, not by raw pixel throughput.
    let rate = weight(3, 96);

    for &t in &thread_counts {
        let mut g = Group::new("codec", args.samples);

        let codec_multi = codec_with(1 << 13, t);
        g.throughput_bytes((big.len() * 4) as u64);
        g.bench(&format!("encode_multichunk_qp30/t{t}"), || {
            codec_multi
                .encode(&big, RateTarget::Qp(30.0))
                .expect("bench encode succeeds")
        });
        let enc_big = codec_multi
            .encode(&big, RateTarget::Qp(30.0))
            .expect("bench encode succeeds");
        g.bench(&format!("decode_multichunk/t{t}"), || {
            codec_multi.decode(&enc_big).expect("bench stream decodes")
        });

        if t == 1 {
            let codec_single = Llm265Codec::with_config(Llm265Config {
                threads: 1,
                ..Llm265Config::default()
            });
            g.throughput_bytes((mid.len() * 4) as u64);
            g.bench("encode_single_qp30/t1", || {
                codec_single
                    .encode(&mid, RateTarget::Qp(30.0))
                    .expect("bench encode succeeds")
            });
        }

        let codec_rate = codec_with(96 * 24, t);
        g.throughput_bytes((rate.len() * 4) as u64);
        g.bench(&format!("encode_bits3/t{t}"), || {
            codec_rate
                .encode(&rate, RateTarget::BitsPerValue(3.0))
                .expect("bench encode succeeds")
        });
        g.bench(&format!("encode_nmse02/t{t}"), || {
            codec_rate
                .encode(&rate, RateTarget::MaxNormalizedMse(0.02))
                .expect("bench encode succeeds")
        });

        samples.extend(
            g.finish()
                .into_iter()
                .map(|sample| ThreadedSample { sample, threads: t }),
        );
    }

    if let Some(path) = args.json {
        // Cargo runs bench binaries with the package as cwd; resolve
        // relative paths against the workspace root so `--json
        // BENCH_codec.json` always means the repo-root trajectory file.
        let path = if path.is_absolute() {
            path
        } else {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(path)
        };
        let run = BenchRun {
            label: args.label,
            threads_available: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            samples,
        };
        json::write_or_append(&path, "codec_throughput", HARDWARE, &run)
            .expect("bench JSON write succeeds");
        println!("recorded run to {}", path.display());
    }
}
