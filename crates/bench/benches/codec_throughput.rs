//! Software codec throughput benchmarks (§6.1 context).
//!
//! The paper measures NVENC at ~1100 MB/s and NVDEC at ~1300 MB/s on
//! tensors. Our software codec is orders of magnitude slower (it is a
//! reference implementation, not silicon); these benches put an exact
//! number on it, and the `hardware::engine` model carries the calibrated
//! NVENC/NVDEC envelope for the system-level results.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use llm265_core::{Llm265Codec, RateTarget, TensorCodec};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_videocodec::{decode_video, encode_video, CodecConfig, Frame};

fn weight_frame(n: usize, seed: u64) -> Frame {
    let mut rng = Pcg32::seed_from(seed);
    let w = llm_weight(n, n, &WeightProfile::default(), &mut rng);
    let (lo, hi) = w.min_max();
    let scale = (hi - lo).max(1e-9) / 255.0;
    Frame::from_fn(n, n, |x, y| (((w[(y, x)] - lo) / scale) as i32).clamp(0, 255) as u8)
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("videocodec_encode");
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 1);
        let cfg = CodecConfig::default().with_qp(30.0);
        g.throughput(Throughput::Bytes((n * n) as u64));
        g.bench_function(format!("{n}x{n}_qp30"), |b| {
            b.iter(|| encode_video(std::slice::from_ref(&frame), &cfg))
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("videocodec_decode");
    for &n in &[64usize, 128] {
        let frame = weight_frame(n, 2);
        let cfg = CodecConfig::default().with_qp(30.0);
        let enc = encode_video(std::slice::from_ref(&frame), &cfg);
        g.throughput(Throughput::Bytes((n * n) as u64));
        g.bench_function(format!("{n}x{n}_qp30"), |b| {
            b.iter(|| decode_video(&enc.bytes).unwrap())
        });
    }
    g.finish();
}

fn bench_tensor_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("llm265_tensor_codec");
    let mut rng = Pcg32::seed_from(3);
    let w = llm_weight(96, 96, &WeightProfile::default(), &mut rng);
    let codec = Llm265Codec::new();
    g.throughput(Throughput::Bytes((w.len() * 4) as u64));
    g.bench_function("encode_qp_fixed", |b| {
        b.iter(|| codec.encode(&w, RateTarget::Qp(30.0)).unwrap())
    });
    let enc = codec.encode(&w, RateTarget::Qp(30.0)).unwrap();
    g.bench_function("decode", |b| b.iter(|| codec.decode(&enc).unwrap()));
    g.bench_function("encode_bits_target", |b| {
        b.iter(|| codec.encode(&w, RateTarget::BitsPerValue(3.0)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode, bench_decode, bench_tensor_codec
}
criterion_main!(benches);
