//! Tiny std-only micro-benchmark harness.
//!
//! The workspace builds with no network access, so it cannot depend on
//! `criterion`. This module provides the subset the benches need: warmup,
//! a fixed sample count, median/min timing, and bytes-per-second
//! throughput reporting. It is intentionally simple — wall-clock medians
//! over a handful of samples — which is plenty for the "is the software
//! codec 10x or 1000x slower than NVENC" questions these benches answer.

use std::time::Instant;

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label, e.g. `lossless_compress/huffman`.
    pub name: String,
    /// Median time per iteration, in seconds.
    pub median_s: f64,
    /// Fastest observed iteration, in seconds.
    pub min_s: f64,
    /// Bytes processed per iteration (0 = no throughput line).
    pub bytes: u64,
}

impl Sample {
    /// Median throughput in MB/s, if a byte count was attached.
    pub fn mb_per_s(&self) -> Option<f64> {
        (self.bytes > 0 && self.median_s > 0.0).then(|| self.bytes as f64 / self.median_s / 1e6)
    }
}

/// A group of related benchmarks sharing a sample budget and a throughput
/// denominator, mirroring criterion's `benchmark_group` shape so the bench
/// files read the same as before.
pub struct Group {
    name: String,
    samples: usize,
    bytes: u64,
    results: Vec<Sample>,
}

impl Group {
    /// Creates a group that times each benchmark `samples` times.
    #[must_use]
    pub fn new(name: &str, samples: usize) -> Self {
        Group {
            name: name.to_string(),
            samples: samples.max(3),
            bytes: 0,
            results: Vec::new(),
        }
    }

    /// Sets the bytes-per-iteration denominator for throughput reporting.
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Times `f`, discarding one warmup run, and records the summary.
    ///
    /// The closure's return value is consumed via a black-box sink so the
    /// optimizer cannot delete the benchmarked work.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        sink(&f()); // warmup + forces at least one full run
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            sink(&f());
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        let sample = Sample {
            name: format!("{}/{name}", self.name),
            median_s: times[times.len() / 2],
            min_s: times[0],
            bytes: self.bytes,
        };
        print_sample(&sample);
        self.results.push(sample);
    }

    /// Finishes the group, returning all recorded samples.
    pub fn finish(self) -> Vec<Sample> {
        self.results
    }
}

/// Opaque sink so the optimizer cannot delete the benchmarked work.
fn sink<T>(value: &T) {
    std::hint::black_box(value);
}

fn print_sample(s: &Sample) {
    match s.mb_per_s() {
        Some(tp) => println!(
            "{:<44} median {:>10.3} ms   min {:>10.3} ms   {:>9.2} MB/s",
            s.name,
            s.median_s * 1e3,
            s.min_s * 1e3,
            tp
        ),
        None => println!(
            "{:<44} median {:>10.3} ms   min {:>10.3} ms",
            s.name,
            s.median_s * 1e3,
            s.min_s * 1e3
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_sample_per_call() {
        let mut g = Group::new("unit", 3);
        g.throughput_bytes(1_000_000);
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/spin");
        assert!(results[0].median_s >= results[0].min_s);
        assert!(results[0].mb_per_s().is_some());
    }

    #[test]
    fn zero_bytes_means_no_throughput() {
        let mut g = Group::new("unit", 3);
        g.bench("noop", || 1u8);
        assert!(g.finish()[0].mb_per_s().is_none());
    }
}
