//! Standard workloads shared by the experiment binaries.
//!
//! Each binary needs the same ingredients: synthetic LLM tensors, trained
//! language models at two scales (a "7B-class" and a "70B-class" stand-in
//! — small transformers whose *relative* compression behaviour mirrors
//! the paper's), probe suites, and the compressed-accuracy pipeline.

use llm265_model::data::{DataError, LangConfig, SyntheticLang};
use llm265_model::optimizer::Adam;
use llm265_model::tasks::{probe_suite, suite_accuracy, ProbeTask};
use llm265_model::transformer::{TransformerConfig, TransformerLm};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight_stack, WeightProfile};
use llm265_tensor::Tensor;

/// Number of training steps used to prepare the small evaluation model.
pub const SMALL_TRAIN_STEPS: usize = 300;
/// Number of training steps for the larger (Table 1) model.
pub const LARGE_TRAIN_STEPS: usize = 450;

/// A trained model plus everything needed to score it.
pub struct TrainedLm {
    /// The trained model.
    pub model: TransformerLm,
    /// The language it was trained on.
    pub lang: SyntheticLang,
    /// Evaluation batch for perplexity.
    pub eval_batch: Vec<Vec<u16>>,
    /// Probe tasks for accuracy.
    pub tasks: Vec<ProbeTask>,
}

impl TrainedLm {
    /// Mean probe-suite accuracy.
    pub fn accuracy(&self) -> f64 {
        suite_accuracy(&self.model, &self.tasks)
    }

    /// Perplexity on the held-out batch.
    pub fn perplexity(&self) -> f64 {
        self.model.eval_perplexity(&self.eval_batch)
    }

    /// Accuracy of a *copy* of the model whose weights went through
    /// `compressor`; also returns the measured bits/value.
    pub fn compressed_accuracy(&self, compressor: &mut dyn LossyCompressor) -> (f64, f64) {
        let mut m = self.model.clone();
        let (bits, values) = m.compress_weights(compressor);
        let acc = suite_accuracy(&m, &self.tasks);
        (acc, bits as f64 / values.max(1) as f64)
    }
}

/// Trains the standard "7B-class stand-in" model: tiny transformer on the
/// tiny grammar, enough steps to reach strong probe accuracy.
///
/// # Errors
///
/// Propagates [`DataError`] from sampling over a malformed grammar.
pub fn small_trained_lm(seed: u64) -> Result<TrainedLm, DataError> {
    train_lm(
        &TransformerConfig::tiny(),
        &LangConfig::tiny(),
        SMALL_TRAIN_STEPS,
        seed,
    )
}

/// Trains the "70B-class stand-in" model (wider, deeper, more steps).
///
/// # Errors
///
/// Propagates [`DataError`] from sampling over a malformed grammar.
pub fn large_trained_lm(seed: u64) -> Result<TrainedLm, DataError> {
    train_lm(
        &TransformerConfig::small(),
        &LangConfig::small(),
        LARGE_TRAIN_STEPS,
        seed,
    )
}

/// Trains a model and assembles its evaluation kit.
///
/// # Errors
///
/// Propagates [`DataError`] from sampling over a malformed grammar.
pub fn train_lm(
    cfg: &TransformerConfig,
    lang_cfg: &LangConfig,
    steps: usize,
    seed: u64,
) -> Result<TrainedLm, DataError> {
    let lang = SyntheticLang::new(lang_cfg);
    let mut rng = Pcg32::seed_from(seed);
    let mut model = TransformerLm::new(cfg, &mut rng);
    let mut opt = Adam::new(3e-3);
    let mut data_rng = Pcg32::seed_from(seed ^ 0xABCD);
    for step in 0..steps {
        if step == steps * 2 / 3 {
            opt.set_lr(1e-3);
        }
        let batch = lang.sample_batch(4, 48, &mut data_rng)?;
        model.train_step(&batch, &mut opt);
    }
    let eval_batch = lang.sample_batch(16, 48, &mut Pcg32::seed_from(seed ^ 0xEE))?;
    let tasks = probe_suite(&lang, 25, seed ^ 0xF0)?;
    Ok(TrainedLm {
        model,
        lang,
        eval_batch,
        tasks,
    })
}

/// The standard synthetic weight stack ("key-projection layers"), used by
/// the codec-side experiments that don't need a trained model.
pub fn weight_stack(layers: usize, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Pcg32::seed_from(seed);
    llm_weight_stack(layers, n, n, &WeightProfile::default(), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_lm_trains_to_useful_accuracy() {
        let lm = train_lm(&TransformerConfig::tiny(), &LangConfig::tiny(), 120, 1).expect("train");
        let acc = lm.accuracy();
        assert!(acc > 0.6, "trained accuracy {acc}");
        assert!(lm.perplexity() < 16.0, "ppl {}", lm.perplexity());
    }

    #[test]
    fn compressed_accuracy_pipeline_runs() {
        struct F16ish;
        impl LossyCompressor for F16ish {
            fn name(&self) -> String {
                "f16ish".into()
            }
            fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
                (t.clone(), t.len() as u64 * 16)
            }
        }
        let lm = train_lm(&TransformerConfig::tiny(), &LangConfig::tiny(), 60, 2).expect("train");
        let clean = lm.accuracy();
        let (acc, bpv) = lm.compressed_accuracy(&mut F16ish);
        assert!(
            (acc - clean).abs() < 1e-9,
            "lossless hook must not change accuracy"
        );
        assert_eq!(bpv, 16.0);
    }

    #[test]
    fn weight_stack_shapes() {
        let stack = weight_stack(3, 32, 5);
        assert_eq!(stack.len(), 3);
        assert!(stack.iter().all(|t| t.shape() == (32, 32)));
    }
}
