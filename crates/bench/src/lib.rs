//! Shared support for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md's per-experiment index). This library provides
//! what they share: an aligned table printer, standard workloads (weight
//! stacks, trained models), and the compressed-model accuracy pipeline.

#![forbid(unsafe_code)]

pub mod json;
pub mod microbench;
pub mod table;
pub mod workloads;
