//! Aligned plain-text table printing for the experiment binaries.

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use llm265_bench::table::Table;
///
/// let mut t = Table::new(vec!["algo", "bits", "acc"]);
/// t.row(vec!["LLM.265".into(), "2.88".into(), "81.5".into()]);
/// let s = t.render();
/// assert!(s.contains("LLM.265"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n");
        print!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a percentage (0..1 input) with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["x".into(), "1".into(), "2".into()]);
        t.row(vec!["longer-cell".into(), "3".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows share the column offsets.
        let h_off = lines[0].find("long-header").unwrap();
        let r_off = lines[2].find('1').unwrap();
        assert_eq!(h_off, r_off);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(3.21159, 2), "3.21");
        assert_eq!(pct(0.815), "81.5");
        assert!(!Table::new(vec!["x"]).len() > 0 || Table::new(vec!["x"]).is_empty());
    }
}
