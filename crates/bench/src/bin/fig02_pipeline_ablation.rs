//! Fig 2(b): bits/value needed to meet an MSE budget as the encoding
//! pipeline's stages are enabled one at a time.
//!
//! The paper reports 8 bits for plain quantization falling to ~2.6 bits
//! with the full intra pipeline, with entropy coding alone contributing
//! ~0.4 bits and inter prediction contributing nothing. We run the same
//! ladder on a synthetic key-projection weight stack (layer index =
//! temporal axis), with the quality constraint expressed in the pixel
//! domain (MSE ≤ 10 px², i.e. ~38 dB PSNR, the §3 operating point).

use llm265_bench::table::{f, Table};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight_stack, WeightProfile};
use llm265_videocodec::ablation::{run_stage, stages};
use llm265_videocodec::{Frame, Profile};

fn main() {
    let mut rng = Pcg32::seed_from(42);
    // 4 layers of 128x128 key-projection-like weights as frames. The
    // profile is tuned so the 8-bit plane has near-paper entropy (~7.4
    // bits) with strong channel-band structure (see DESIGN.md).
    let profile_cfg = WeightProfile {
        body_std: 0.02,
        channel_spread: 0.4,
        outlier_prob: 2e-4,
        outlier_scale: 3.0,
        smooth_strength: 1.0,
        smooth_rank: 3,
        band_strength: 4.0,
        band_width: 6,
    };
    let stack = llm_weight_stack(4, 128, 128, &profile_cfg, &mut rng);
    let frames: Vec<Frame> = stack
        .iter()
        .map(|w| {
            let (lo, hi) = w.min_max();
            let scale = (hi - lo).max(1e-9) / 255.0;
            Frame::from_fn(w.cols(), w.rows(), |x, y| {
                (((w[(y, x)] - lo) / scale).round() as i32).clamp(0, 255) as u8
            })
        })
        .collect();

    let target_mse = 10.0; // pixel² units (~38 dB PSNR)
    let profile = Profile::h265();
    let mut table = Table::new(vec!["stage", "bits/value", "mse(px^2)"]);
    let mut prev_bits = None;
    for stage in stages() {
        let r = run_stage(&frames, &profile, &stage, target_mse);
        let delta = prev_bits
            .map(|p: f64| format!(" ({:+.2})", r.bits_per_value - p))
            .unwrap_or_default();
        table.row(vec![
            r.label.to_string(),
            format!("{}{}", f(r.bits_per_value, 3), delta),
            f(r.mse, 2),
        ]);
        prev_bits = Some(r.bits_per_value);
    }
    table.print("Fig 2(b) — pipeline stage ablation (MSE budget 10 px²)");
    println!("\nPaper shape: 8.0 -> ~7.6 (entropy) -> ... -> ~2.6 (intra); inter adds nothing.");
}
