//! Fig 5: probe-suite accuracy versus *measured* bits/value for weight
//! compression on the small ("7B-class stand-in") model.
//!
//! Like the paper's scatter, every point is (measured wire bits/value,
//! accuracy): LLM.265's rate includes all chunk/stream headers, and the
//! baselines' rates include their scale metadata (per-row or group
//! scales), which is what makes integer-bit baselines land at 4-5
//! measured bits for a "3-bit" grid. Paper shape: LLM.265 tracks the
//! BF16 accuracy line down to ~3 measured bits; the baselines need ~1
//! extra bit for the same accuracy, and the variable-rate search wins in
//! the extreme low-bit regime.

use llm265_bench::table::{f, pct, Table};
use llm265_bench::workloads::{small_trained_lm, TrainedLm};
use llm265_core::rate::{allocate_variable, default_k_grid};
use llm265_core::{Llm265Channel, Llm265Codec};
use llm265_model::param::VisitParams;
use llm265_model::tasks::suite_accuracy;
use llm265_quant::awq::AwqQuantizer;
use llm265_quant::gptq::GptqQuantizer;
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::{stats, Tensor};

/// One scatter point.
struct Point {
    method: String,
    bpv: f64,
    nmse: f64,
    acc: f64,
}

/// Mean NMSE between two models' weight matrices.
fn weight_nmse(
    a: &llm265_model::transformer::TransformerLm,
    b: &llm265_model::transformer::TransformerLm,
) -> f64 {
    let mut wa = Vec::new();
    let mut wb = Vec::new();
    let mut ma = a.clone();
    let mut mb = b.clone();
    ma.visit_params(&mut |p| {
        if p.is_weight_matrix() {
            wa.push(p.value.clone());
        }
    });
    mb.visit_params(&mut |p| {
        if p.is_weight_matrix() {
            wb.push(p.value.clone());
        }
    });
    let mut total = 0.0;
    for (x, y) in wa.iter().zip(&wb) {
        total += stats::tensor_mse(x, y) / stats::variance(x.data()).max(1e-30);
    }
    total / wa.len().max(1) as f64
}

/// Compresses with a per-tensor channel; returns a scatter point.
fn point(lm: &TrainedLm, method: &str, comp: &mut dyn LossyCompressor) -> Point {
    let mut m = lm.model.clone();
    let (bits, values) = m.compress_weights(comp);
    Point {
        method: method.to_string(),
        bpv: bits as f64 / values.max(1) as f64,
        nmse: weight_nmse(&lm.model, &m),
        acc: suite_accuracy(&m, &lm.tasks),
    }
}

/// LLM.265 variable mode: the footnote-2 `B = k·l + b` slope search over
/// the full weight stack, then decode back into the model.
fn variable_point(lm: &TrainedLm, avg_bits: f64) -> Point {
    let mut m = lm.model.clone();
    let mut weights: Vec<Tensor> = Vec::new();
    m.visit_params(&mut |p| {
        if p.is_weight_matrix() {
            weights.push(p.value.clone());
        }
    });
    let codec = Llm265Codec::new();
    let alloc = allocate_variable(&codec, &weights, avg_bits, &default_k_grid()).expect("alloc");
    let decoded: Vec<Tensor> = alloc
        .layers
        .iter()
        .map(|l| {
            use llm265_core::TensorCodec;
            codec.decode(&l.encoded).expect("decode")
        })
        .collect();
    let mut idx = 0;
    m.visit_params(&mut |p| {
        if p.is_weight_matrix() {
            p.value = decoded[idx].clone();
            idx += 1;
        }
    });
    Point {
        method: format!("LLM.265 var (k={:+.2})", alloc.k),
        bpv: alloc.bits_per_value(),
        nmse: weight_nmse(&lm.model, &m),
        acc: suite_accuracy(&m, &lm.tasks),
    }
}

fn main() {
    let lm = small_trained_lm(2026).expect("training data");
    let baseline_acc = lm.accuracy();
    println!("BF16 baseline accuracy: {}%", pct(baseline_acc));

    let mut points: Vec<Point> = Vec::new();
    for &bits in &[2.0, 2.5, 3.0, 3.5, 4.5] {
        points.push(point(
            &lm,
            &format!("LLM.265 fixed {bits}b"),
            &mut Llm265Channel::at_bits(bits),
        ));
    }
    for &bits in &[2.0, 2.5, 3.0] {
        points.push(variable_point(&lm, bits));
    }
    for b in [2u32, 3, 4] {
        points.push(point(
            &lm,
            &format!("RTN{b} per-row"),
            &mut RtnQuantizer::symmetric(b, GroupScheme::PerRow),
        ));
        points.push(point(
            &lm,
            &format!("GPTQ{b}"),
            &mut GptqAdapter { bits: b },
        ));
        points.push(point(&lm, &format!("AWQ{b}"), &mut AwqAdapter { bits: b }));
    }

    points.sort_by(|a, b| a.bpv.total_cmp(&b.bpv));
    let mut table = Table::new(vec![
        "method",
        "measured bits/value",
        "weight NMSE",
        "accuracy",
    ]);
    for p in &points {
        table.row(vec![
            p.method.clone(),
            f(p.bpv, 2),
            f(p.nmse, 4),
            pct(p.acc),
        ]);
    }
    table.print("Fig 5 — accuracy vs measured bits/value (weight compression)");
    println!("\nPaper shape: at equal measured bits LLM.265 sits on or above every baseline;");
    println!("its fractional rates fill the gaps integer grids cannot reach.");
}

struct GptqAdapter {
    bits: u32,
}

impl LossyCompressor for GptqAdapter {
    fn name(&self) -> String {
        format!("GPTQ{}", self.bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let q = GptqQuantizer::with_synthetic_calibration(self.bits, 1 << 20, t.cols(), 96, 55);
        (q.apply(t), q.wire_bits(t))
    }
}

struct AwqAdapter {
    bits: u32,
}

impl LossyCompressor for AwqAdapter {
    fn name(&self) -> String {
        format!("AWQ{}", self.bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let group = t.cols().min(32);
        let q = AwqQuantizer::with_synthetic_calibration(self.bits, group, t.cols(), 96, 66);
        (q.apply(t), q.wire_bits(t))
    }
}
