//! Table 1: accuracy of the large ("70B-class stand-in") model at ~3-bit
//! budgets under different algorithms, on three probe tasks.
//!
//! The paper's shape: at 3.25 bits the group-wise GPTQ/AWQ variants stay
//! close to BF16; at 3.0 bits without grouping they fall hard (especially
//! on the harder task); LLM.265 at a *fractional* 2.88 bits matches the
//! group-wise baselines with fewer bits.

use llm265_bench::table::{pct, Table};
use llm265_bench::workloads::large_trained_lm;
use llm265_core::Llm265Channel;
use llm265_quant::awq::AwqQuantizer;
use llm265_quant::gptq::GptqQuantizer;
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

struct GptqAdapter {
    bits: u32,
    group: usize,
}

impl LossyCompressor for GptqAdapter {
    fn name(&self) -> String {
        if self.group >= 1 << 20 {
            format!("GPTQ ({} bits)", self.bits)
        } else {
            format!("GPTQ-{}G ({} bits)", self.group, self.bits)
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let q = GptqQuantizer::with_synthetic_calibration(self.bits, self.group, t.cols(), 96, 7);
        (q.apply(t), q.wire_bits(t))
    }
}

struct AwqAdapter {
    bits: u32,
    group: usize,
}

impl LossyCompressor for AwqAdapter {
    fn name(&self) -> String {
        if self.group >= 1 << 20 {
            format!("AWQ ({} bits)", self.bits)
        } else {
            format!("AWQ-{}G ({} bits)", self.group, self.bits)
        }
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let group = self.group.min(t.cols());
        let q = AwqQuantizer::with_synthetic_calibration(self.bits, group, t.cols(), 96, 8);
        (q.apply(t), q.wire_bits(t))
    }
}

fn main() {
    let lm = large_trained_lm(777).expect("training data");
    // Three probe tasks stand in for PIQA / WinoGrande / HellaSwag.
    let task_names = ["grammar-0", "grammar-3", "copy-recall"];
    let tasks: Vec<_> = lm
        .tasks
        .iter()
        .filter(|t| task_names.contains(&t.name.as_str()))
        .collect();

    let score = |model: &llm265_model::transformer::TransformerLm| -> Vec<f64> {
        tasks.iter().map(|t| t.accuracy(model)).collect()
    };

    let mut table = Table::new(vec![
        "# avg bits",
        "algorithm",
        "task-A",
        "task-B",
        "task-C",
        "val ppl",
    ]);

    let base = score(&lm.model);
    table.row(vec![
        "16".into(),
        "- (BF16)".into(),
        pct(base[0]),
        pct(base[1]),
        pct(base[2]),
        format!("{:.3}", lm.model.eval_perplexity(&lm.eval_batch)),
    ]);

    let mut run = |label: &str, bits_label: &str, comp: &mut dyn LossyCompressor| {
        let mut m = lm.model.clone();
        let (bits, values) = m.compress_weights(comp);
        let accs = score(&m);
        let measured = bits as f64 / values.max(1) as f64;
        table.row(vec![
            format!("{bits_label} ({measured:.2})"),
            label.to_string(),
            pct(accs[0]),
            pct(accs[1]),
            pct(accs[2]),
            format!("{:.3}", m.eval_perplexity(&lm.eval_batch)),
        ]);
    };

    run("GPTQ-32G", "3.25", &mut GptqAdapter { bits: 3, group: 32 });
    run("AWQ-32G", "3.25", &mut AwqAdapter { bits: 3, group: 32 });
    run(
        "GPTQ",
        "3.00",
        &mut GptqAdapter {
            bits: 3,
            group: 1 << 20,
        },
    );
    run(
        "AWQ",
        "3.00",
        &mut AwqAdapter {
            bits: 3,
            group: 1 << 20,
        },
    );
    run("LLM.265 (ours)", "2.88", &mut Llm265Channel::at_bits(2.88));

    table.print("Table 1 — large-model accuracy at ~3-bit budgets (3 probe tasks)");
    println!("\nPaper shape: LLM.265 at 2.88 bits ≈ the 3.25-bit group-wise baselines, and");
    println!("clearly beats the ungrouped 3-bit baselines.");
}
