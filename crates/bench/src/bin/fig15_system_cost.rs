//! Fig 15: total codec+NIC area and per-epoch gradient-transfer energy
//! for a 100 Gb/s effective bandwidth, comparing the three-in-one codec
//! against the chained hardware baselines.
//!
//! Compression ratios for each contender come from measuring the actual
//! compressors on a Pythia-125M-sized synthetic gradient sample at the
//! common quality point; areas/powers come from the calibrated hardware
//! blocks.

use llm265_bench::table::{f, Table};
use llm265_core::Llm265Channel;
use llm265_hardware::three_in_one::{
    chained_contender, lossless_hw_block, three_in_one_contender, uncompressed_contender,
    SystemContender,
};
use llm265_quant::chained::{ChainedCodec, LosslessStage, NumericStage};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

/// Measures a compressor's ratio (16-bit raw / compressed) on gradient
/// samples.
fn measure_ratio(c: &mut dyn LossyCompressor) -> f64 {
    let mut rng = Pcg32::seed_from(60);
    let mut raw = 0u64;
    let mut packed = 0u64;
    for i in 0..3 {
        let g = llm_gradient(
            128,
            128,
            &GradientProfile::at_progress(0.3 * i as f64),
            &mut rng,
        );
        let (_, bits) = c.transcode(&g);
        raw += g.len() as u64 * 16;
        packed += bits;
    }
    raw as f64 / packed as f64
}

fn main() {
    // Pythia-125M gradient volume over one epoch: 125M params × 16 bits ×
    // (5M samples / batch 512) ≈ 9766 steps.
    let steps = 5_000_000u64 / 512;
    let epoch_bits = 125_000_000u64 * 16 * steps;

    let mut contenders: Vec<SystemContender> = vec![uncompressed_contender()];
    for (label, stage) in [
        ("INT8+H.", LosslessStage::Huffman),
        ("INT8+D.", LosslessStage::Deflate),
        ("INT8+L.", LosslessStage::Lz4),
        ("INT8+C.", LosslessStage::Cabac),
    ] {
        let mut c = ChainedCodec::new(NumericStage::Rtn(8), stage);
        let ratio = measure_ratio(&mut c);
        let hw = lossless_hw_block(match stage {
            LosslessStage::Huffman => "Huffman",
            LosslessStage::Deflate => "Deflate",
            LosslessStage::Lz4 => "LZ4",
            LosslessStage::Cabac => "CABAC",
        });
        contenders.push(chained_contender(label, &hw, ratio));
    }
    let t31_ratio = measure_ratio(&mut Llm265Channel::at_bits(3.5));
    contenders.push(three_in_one_contender(t31_ratio));

    let mut table = Table::new(vec![
        "system",
        "ratio",
        "codec area (mm^2)",
        "codec+NIC area @100Gb/s (mm^2)",
        "epoch energy (kJ)",
    ]);
    for c in &contenders {
        table.row(vec![
            c.name.clone(),
            f(c.ratio, 2),
            f(c.codec_area_mm2, 2),
            f(c.system_area_mm2(100.0 * c.ratio), 1),
            f(c.transfer_energy_j(epoch_bits) / 1e3, 1),
        ]);
    }
    table.print("Fig 15 — system area and per-epoch energy (Pythia-125M gradients)");
    println!("\nPaper shape: the three-in-one codec wins both axes — its higher information");
    println!("efficiency shrinks the NIC provisioning, the dominant area/power term.");
}
