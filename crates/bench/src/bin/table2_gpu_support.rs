//! Table 2: GPU hardware support for the candidate codecs.

use llm265_bench::table::Table;
use llm265_hardware::gpu_support::{support, tensor_codecs_for, CodecStandard, GpuGeneration};

fn main() {
    let mut table = Table::new(vec!["GPU Gen.", "H.264", "H.265", "AV1", "VP9"]);
    for gen in GpuGeneration::all() {
        let mut row = vec![gen.name().to_string()];
        for codec in CodecStandard::all() {
            row.push(support(gen, codec).label());
        }
        table.row(row);
    }
    table.print("Table 2 — GPU support for video codecs");

    println!();
    for gen in GpuGeneration::all() {
        let usable: Vec<&str> = tensor_codecs_for(gen).iter().map(|c| c.name()).collect();
        println!(
            "{:13} usable for LLM.265 (enc+dec in hardware): {}",
            gen.name(),
            usable.join(", ")
        );
    }
    println!("\nVP9 is decode-only everywhere, so it is excluded; H.265 is the only codec with");
    println!("8K encode+decode on every generation, which is why LLM.265 adopts it.");
}
