//! Ablation of LLM.265 design choices (beyond the paper's Fig 2b stage
//! ladder): chunk granularity and codec profile, measured as bits/value
//! needed for a fixed reconstruction quality.
//!
//! - **Chunk size** trades per-chunk scale adaptation (smaller chunks see
//!   narrower value ranges → finer 8-bit grids) against per-chunk header
//!   overhead. NVENC's frame-size limit forces chunking anyway; this
//!   shows the codec is not sensitive to where the boundary lands.
//! - **Profile** isolates how much of the rate comes from block-structure
//!   richness (H.264-like 16 px tools vs H.265-like 32 px tools).

use llm265_bench::table::{f, Table};
use llm265_bench::workloads::weight_stack;
use llm265_core::{Llm265Codec, Llm265Config, Profile, ProfileKind, RateTarget, TensorCodec};
use llm265_tensor::stats;
use llm265_tensor::Tensor;

/// Bits/value the codec needs to reach NMSE ≤ `target` on the stack.
fn bits_for_quality(codec: &Llm265Codec, stack: &[Tensor], target: f64) -> (f64, f64) {
    let mut bits = 0u64;
    let mut values = 0u64;
    let mut nmse = 0.0;
    for w in stack {
        let enc = codec
            .encode(w, RateTarget::MaxNormalizedMse(target))
            .expect("encode");
        let dec = codec.decode(&enc).expect("decode");
        nmse += stats::tensor_mse(w, &dec) / stats::variance(w.data());
        bits += enc.bits();
        values += w.len() as u64;
    }
    (bits as f64 / values as f64, nmse / stack.len() as f64)
}

fn main() {
    let stack = weight_stack(3, 128, 2024);
    let target = 0.02;

    let mut table = Table::new(vec![
        "max chunk pixels",
        "chunks/tensor",
        "bits/value",
        "NMSE",
    ]);
    for &pixels in &[128 * 8, 128 * 16, 128 * 32, 128 * 64, 128 * 128] {
        let codec = Llm265Codec::with_config(Llm265Config {
            max_chunk_pixels: pixels,
            ..Llm265Config::default()
        });
        let (bpv, nmse) = bits_for_quality(&codec, &stack, target);
        table.row(vec![
            pixels.to_string(),
            (128 * 128usize).div_ceil(pixels).to_string(),
            f(bpv, 3),
            f(nmse, 4),
        ]);
    }
    table.print(&format!(
        "Ablation A — chunk granularity at NMSE <= {target} (128x128 weights)"
    ));

    let mut table = Table::new(vec!["profile", "modes", "ctu", "bits/value", "NMSE"]);
    for kind in [ProfileKind::H264, ProfileKind::H265, ProfileKind::Av1] {
        let profile = Profile::of(kind);
        let (modes, ctu) = (profile.modes().len(), profile.ctu());
        let codec = Llm265Codec::with_config(Llm265Config {
            profile,
            ..Llm265Config::default()
        });
        let (bpv, nmse) = bits_for_quality(&codec, &stack, target);
        table.row(vec![
            kind.name().to_string(),
            modes.to_string(),
            ctu.to_string(),
            f(bpv, 3),
            f(nmse, 4),
        ]);
    }
    table.print(&format!("Ablation B — codec profile at NMSE <= {target}"));
    println!("\nReading: chunking costs little until chunks shrink below a few CTU rows;");
    println!("profile differences at fixed quality mirror Fig 6's small gaps.");
}
