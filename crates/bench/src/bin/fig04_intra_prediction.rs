//! Fig 4: intra prediction captures the channel-wise structure of weight
//! blocks, leaving small residuals that transform+quantization code
//! cheaply.
//!
//! We take a structured weight block, run the encoder's own mode search,
//! and report the residual energy before/after prediction and the number
//! of significant coefficients before/after transform+quantization.

use llm265_bench::table::{f, Table};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::synthetic::{llm_weight, WeightProfile};
use llm265_videocodec::intra::{PredMode, RefSamples};
use llm265_videocodec::quant::Quantizer;
use llm265_videocodec::transform::DctPlan;
use llm265_videocodec::Frame;

fn main() {
    let mut rng = Pcg32::seed_from(11);
    // The Fig 2(b)/Fig 4 weight texture: strong channel bands + smooth
    // low-rank field (see DESIGN.md).
    let profile = WeightProfile {
        body_std: 0.02,
        channel_spread: 0.4,
        outlier_prob: 2e-4,
        outlier_scale: 3.0,
        smooth_strength: 1.0,
        smooth_rank: 3,
        band_strength: 4.0,
        band_width: 6,
    };
    let w = llm_weight(64, 64, &profile, &mut rng);
    let (lo, hi) = w.min_max();
    let scale = (hi - lo).max(1e-9) / 255.0;
    let frame = Frame::from_fn(64, 64, |x, y| {
        (((w[(y, x)] - lo) / scale).round() as i32).clamp(0, 255) as u8
    });

    // Predict the 16x16 block at (16,16) from its reconstructed (here:
    // original) neighbours, trying every H.265 mode.
    let (x0, y0, n) = (16usize, 16usize, 16usize);
    let refs = RefSamples::gather(&frame, x0, y0, n);
    let mut orig = vec![0i32; n * n];
    frame.read_block(x0, y0, n, &mut orig);

    let mut best: Option<(PredMode, Vec<i32>, u64)> = None;
    for &mode in llm265_videocodec::Profile::h265().modes() {
        let pred = refs.predict(mode);
        let sad: u64 = orig
            .iter()
            .zip(&pred)
            .map(|(&a, &b)| (a - b).unsigned_abs() as u64)
            .sum();
        if best.as_ref().is_none_or(|&(_, _, s)| sad < s) {
            best = Some((mode, pred, sad));
        }
    }
    let (mode, pred, _) = best.expect("modes tried");

    let energy = |xs: &[i32]| -> f64 { xs.iter().map(|&v| (v as f64).powi(2)).sum() };
    let residual: Vec<i32> = orig.iter().zip(&pred).map(|(&a, &b)| a - b).collect();
    let centered: Vec<i32> = orig.iter().map(|&a| a - 128).collect();

    let plan = DctPlan::new(n);
    let q = Quantizer::from_qp(36.0);
    let count_sig = |block: &[i32]| -> usize {
        q.quantize_block(&plan.forward(block))
            .iter()
            .filter(|&&l| l != 0)
            .count()
    };

    let mut t = Table::new(vec!["quantity", "no prediction (a)", "after intra (b,c)"]);
    t.row(vec!["best mode".into(), "-".into(), format!("{mode:?}")]);
    t.row(vec![
        "residual energy".into(),
        f(energy(&centered), 0),
        f(energy(&residual), 0),
    ]);
    t.row(vec![
        "significant coeffs @qp36 (d)".into(),
        count_sig(&centered).to_string(),
        count_sig(&residual).to_string(),
    ]);
    t.print("Fig 4 — intra prediction on a weight block");
    println!(
        "\nPaper shape: residuals after intra prediction are much smaller and quantize to\nsparse coefficients that are cheap to entropy-code."
    );
}
