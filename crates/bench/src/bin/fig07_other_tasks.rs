//! Fig 7: LLM.265 weight compression on four non-LM tasks (the paper's
//! sentiment / retrieval / VQA / ImageNet workloads, stood in by the
//! synthetic feature tasks of `llm265_model::tasks::fig7_tasks`).
//!
//! Each task gets a trained MLP whose weight matrices are compressed at a
//! sweep of budgets. Points are reported at *measured* bits/value (see
//! fig05 for why that matters); the paper's shape is LLM.265 sitting at
//! or above the baselines at equal measured bits on every task family.

use llm265_bench::table::{f, pct, Table};
use llm265_core::Llm265Channel;
use llm265_model::mlp::MlpClassifier;
use llm265_model::tasks::{fig7_tasks, FeatureTask};
use llm265_quant::awq::AwqQuantizer;
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::Tensor;

struct AwqAdapter {
    bits: u32,
}

impl LossyCompressor for AwqAdapter {
    fn name(&self) -> String {
        format!("AWQ{}", self.bits)
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let group = t.cols().min(16);
        let q = AwqQuantizer::with_synthetic_calibration(self.bits, group, t.cols(), 64, 5);
        (q.apply(t), q.wire_bits(t))
    }
}

fn run_point(
    task: &FeatureTask,
    model: &MlpClassifier,
    name: &str,
    comp: &mut dyn LossyCompressor,
) -> (String, f64, f64) {
    let mut m = model.clone();
    let (bits, values) = m.compress_weights(comp);
    (
        name.to_string(),
        bits as f64 / values.max(1) as f64,
        task.accuracy(&m),
    )
}

fn main() {
    let tasks = fig7_tasks(2026);
    for task in &tasks {
        let model = task.train_model(24, 120, 99);
        let clean = task.accuracy(&model);

        let mut points: Vec<(String, f64, f64)> = Vec::new();
        for &bits in &[2.0f64, 2.8, 3.5, 4.5] {
            points.push(run_point(
                task,
                &model,
                &format!("LLM.265 {bits}b"),
                &mut Llm265Channel::at_bits(bits),
            ));
        }
        for b in [2u32, 3, 4] {
            points.push(run_point(
                task,
                &model,
                &format!("RTN{b} per-row"),
                &mut RtnQuantizer::symmetric(b, GroupScheme::PerRow),
            ));
            points.push(run_point(
                task,
                &model,
                &format!("AWQ{b}"),
                &mut AwqAdapter { bits: b },
            ));
        }
        points.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut table = Table::new(vec!["method", "measured bits", "accuracy"]);
        for (name, bpv, acc) in &points {
            table.row(vec![name.clone(), f(*bpv, 2), pct(*acc)]);
        }
        table.print(&format!(
            "Fig 7 — task '{}' ({} classes, clean accuracy {}%)",
            task.name,
            task.classes,
            pct(clean)
        ));
    }
    println!("\nPaper shape: at equal measured bits LLM.265 matches or beats the quantization");
    println!("baselines on every task family (our MLP substrates are small and weakly");
    println!("structured, so the margins are narrower than the paper's real models).");
}
