//! Fig 16: cluster-level impact of communication compression.
//!
//! (a) Pareto frontier of total die area versus normalized training
//! performance for three scenarios (no compression / NVENC-class /
//! three-in-one codec), sweeping GPU counts, dp×pp splits, NIC counts and
//! codec areas. (b) Energy-efficiency gain versus model size.
//!
//! Paper anchors: at a 50 000 mm² budget the three-in-one codec reaches
//! ~1.7x the uncompressed performance, and it needs ~1.6x less area for a
//! fixed performance target.

use llm265_bench::table::{f, Table};
use llm265_hardware::cluster::{
    evaluate, frontier_perf_at, pareto_frontier, sweep, ClusterConfig, Compression, GpuSpec,
    ModelSpec,
};

fn main() {
    let model = ModelSpec::llama_7b();
    let gpu = GpuSpec::a100_class();
    let scenarios = [
        Compression::none(),
        Compression::nvenc(),
        Compression::three_in_one(),
    ];

    // (a) area vs normalized performance at a set of budgets.
    let frontiers: Vec<_> = scenarios
        .iter()
        .map(|c| (c.name.clone(), pareto_frontier(&sweep(&model, &gpu, c))))
        .collect();
    let configs_swept: usize = scenarios.iter().map(|c| sweep(&model, &gpu, c).len()).sum();

    // Normalize to the uncompressed frontier at the smallest shared budget.
    let budgets = [15_000.0, 25_000.0, 50_000.0, 100_000.0, 200_000.0];
    let norm = frontier_perf_at(&frontiers[0].1, budgets[0]).unwrap_or(1.0);

    let mut table = Table::new(vec![
        "area budget (mm^2)",
        "Uncompressed",
        "NVENC/NVDEC",
        "Three-in-one",
        "3in1 / uncmp",
    ]);
    for &b in &budgets {
        let perfs: Vec<Option<f64>> = frontiers
            .iter()
            .map(|(_, fr)| frontier_perf_at(fr, b))
            .collect();
        let cell = |p: &Option<f64>| p.map(|v| f(v / norm, 2)).unwrap_or_else(|| "-".into());
        let ratio = match (perfs[2], perfs[0]) {
            (Some(a), Some(bse)) => format!("{:.2}x", a / bse),
            _ => "-".into(),
        };
        table.row(vec![
            f(b, 0),
            cell(&perfs[0]),
            cell(&perfs[1]),
            cell(&perfs[2]),
            ratio,
        ]);
    }
    table.print(&format!(
        "Fig 16(a) — Pareto performance vs area budget ({configs_swept} configurations swept)"
    ));

    // Area needed for a fixed performance target.
    let target = 4.0 * norm;
    let area_for = |fr: &[(f64, f64)]| -> Option<f64> {
        fr.iter().find(|&&(_, p)| p >= target).map(|&(a, _)| a)
    };
    if let (Some(a_raw), Some(a_31)) = (area_for(&frontiers[0].1), area_for(&frontiers[2].1)) {
        println!(
            "\nArea for {:.1}x normalized performance: uncompressed {:.0} mm², three-in-one {:.0} mm² ({:.2}x less)",
            4.0,
            a_raw,
            a_31,
            a_raw / a_31
        );
    }

    // (b) energy efficiency vs model size: cluster scales with the model.
    let mut table = Table::new(vec![
        "model params",
        "gpus",
        "tokens/J uncompressed",
        "tokens/J three-in-one",
        "gain",
    ]);
    for (params, gpus) in [(7.0e9, 16usize), (13.0e9, 32), (28.0e9, 64), (70.0e9, 160)] {
        let m = ModelSpec::scaled(params);
        let cfg = ClusterConfig {
            gpus,
            dp: gpus,
            pp: 1,
            nics_per_gpu: 1,
            codec_mm2_per_gpu: 3.9,
        };
        let raw = evaluate(&m, &gpu, &Compression::none(), &cfg);
        let t31 = evaluate(&m, &gpu, &Compression::three_in_one(), &cfg);
        table.row(vec![
            format!("{:.0}B", params / 1e9),
            gpus.to_string(),
            format!("{:.1}", raw.tokens_per_joule),
            format!("{:.1}", t31.tokens_per_joule),
            format!("{:.2}x", t31.tokens_per_joule / raw.tokens_per_joule),
        ]);
    }
    table.print("Fig 16(b) — energy efficiency vs model size");
    println!("\nPaper shape: compression's speedup and energy gain grow with scale; the");
    println!("three-in-one codec dominates NVENC-class engines at equal silicon.");
}
