//! Fig 3: transform coding mitigates outliers by spreading them across
//! the block.
//!
//! (a)→(b): a normal distribution with heavy-tailed outliers loses its
//! outliers after the DCT. (c)→(d): a block containing a single value of
//! 128 among small values becomes a block of moderate coefficients.

use llm265_bench::table::{f, Table};
use llm265_tensor::rng::Pcg32;
use llm265_tensor::stats;
use llm265_videocodec::transform::DctPlan;

fn main() {
    // (a) -> (b): distribution-level effect on an 8x8 tiling of a
    // 128x128 normal-with-outliers tensor.
    let mut rng = Pcg32::seed_from(7);
    let n = 128usize;
    let values: Vec<f32> = (0..n * n)
        .map(|_| {
            let mut v = rng.normal() * 8.0;
            if rng.chance(0.004) {
                v += if rng.chance(0.5) { 100.0 } else { -100.0 };
            }
            v as f32
        })
        .collect();

    let plan = DctPlan::new(8);
    let mut coeffs_all: Vec<f32> = Vec::with_capacity(values.len());
    for by in 0..n / 8 {
        for bx in 0..n / 8 {
            let block: Vec<i32> = (0..64)
                .map(|i| {
                    let (y, x) = (i / 8, i % 8);
                    values[(by * 8 + y) * n + bx * 8 + x] as i32
                })
                .collect();
            coeffs_all.extend(plan.forward(&block).iter().map(|&c| c as f32));
        }
    }

    let mut t = Table::new(vec!["metric", "before DCT (a)", "after DCT (b)"]);
    t.row(vec![
        "std dev".into(),
        f(stats::std_dev(&values), 2),
        f(stats::std_dev(&coeffs_all), 2),
    ]);
    t.row(vec![
        "peak/sigma".into(),
        f(stats::peak_to_sigma(&values), 2),
        f(stats::peak_to_sigma(&coeffs_all), 2),
    ]);
    t.row(vec![
        "outliers >4σ (%)".into(),
        f(stats::outlier_fraction(&values, 4.0) * 100.0, 3),
        f(stats::outlier_fraction(&coeffs_all, 4.0) * 100.0, 3),
    ]);
    t.row(vec![
        "excess kurtosis".into(),
        f(stats::kurtosis(&values), 2),
        f(stats::kurtosis(&coeffs_all), 2),
    ]);
    t.print("Fig 3(a,b) — DCT removes outliers from the value distribution");

    // (c) -> (d): the single-outlier example block.
    let mut block = vec![1i32; 64];
    block[3 * 8 + 4] = 128;
    let coeffs = plan.forward(&block);
    let peak_in = block.iter().map(|&v| v.abs()).max().unwrap();
    let peak_out = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    let mut t = Table::new(vec!["", "block (c)", "coefficients (d)"]);
    t.row(vec![
        "max |value|".into(),
        peak_in.to_string(),
        f(peak_out, 2),
    ]);
    t.row(vec![
        "values > 20".into(),
        block.iter().filter(|&&v| v.abs() > 20).count().to_string(),
        coeffs
            .iter()
            .filter(|&&c| c.abs() > 20.0)
            .count()
            .to_string(),
    ]);
    t.print("Fig 3(c,d) — one 128-valued outlier amortized across the block");
    println!("\nPaper shape: the DCT output contains no outliers; the 128 spike is spread out.");
}
