//! Table 3: power, area and energy-per-bit of communication versus
//! compression, plus the derived §7.3 ratios.

use llm265_bench::table::{f, Table};
use llm265_hardware::energy::{
    compression_vs_link_ratio, end_to_end_gain, table3, NCCL_PJ_PER_BIT,
};

fn main() {
    let mut table = Table::new(vec!["", "Power (W)", "Area (mm^2)", "Energy/Bit (pJ)"]);
    for row in table3() {
        table.row(vec![
            row.name.to_string(),
            row.power_w.map(|p| f(p, 2)).unwrap_or_else(|| "-".into()),
            row.area_mm2.map(|a| f(a, 2)).unwrap_or_else(|| "-".into()),
            f(row.energy_pj_per_bit, 1),
        ]);
    }
    table.print("Table 3 — energy for communication vs compression");

    let ratio = compression_vs_link_ratio(97.8, 63.5);
    println!("\nDerived (§7.3):");
    println!(
        "  NCCL / three-in-one(enc+dec) = {} / ({} + {}) = {:.1}x",
        NCCL_PJ_PER_BIT, 97.8, 63.5, ratio
    );
    for r in [2.0, 5.0, 10.0, 20.0] {
        println!(
            "  end-to-end energy gain at {r:.0}x compression: {:.2}x",
            end_to_end_gain(r, 97.8, 63.5)
        );
    }
    println!("\nPaper anchors: 31.7x compression-vs-link ratio; 4.32x gain at 5x compression.");
}
