//! Fig 10: data-parallel training with compressed weight-gradient
//! exchange — loss and validation perplexity versus 1-bit Adam/LAMB and
//! RTN baselines.
//!
//! Paper shape: LLM.265 at 2.6 bits lands near uncompressed; 1.4 bits is
//! comparable to the best warm-up baseline at 3.25 bits; 0.8 bits
//! converges early; RTN-2 fails outright and RTN-4 sits between.

use llm265_bench::table::{f, Table};
use llm265_core::Llm265TrackingChannel;
use llm265_distrib::data_parallel::DataParallelTrainer;
use llm265_model::data::{LangConfig, SyntheticLang};
use llm265_model::optimizer::Adam;
use llm265_model::transformer::{Batch, TransformerConfig, TransformerLm};
use llm265_quant::onebit::{OneBitCompressor, OneBitFlavor};
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;

const STEPS: usize = 140;
const REPLICAS: usize = 4;
const REPORT_EVERY: usize = 35;

fn run(
    name: &str,
    make: &dyn Fn() -> Option<Box<dyn LossyCompressor>>,
) -> (String, Vec<f64>, f64, f64) {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(11));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(12);
    let val = lang
        .sample_batch(8, 40, &mut Pcg32::seed_from(13))
        .expect("training data");

    let mut dp = DataParallelTrainer::new(&mut model, REPLICAS);
    if let Some(first) = make() {
        let mut cs: Vec<Box<dyn LossyCompressor>> = vec![first];
        for _ in 1..REPLICAS {
            cs.push(make().expect("same compressor per replica"));
        }
        dp = dp.with_compressors(cs);
    }
    let mut losses = Vec::new();
    for step in 0..STEPS {
        let shards: Vec<Batch> = (0..REPLICAS)
            .map(|_| lang.sample_batch(1, 40, &mut rng).expect("training data"))
            .collect();
        let loss = dp.train_step(&shards, &mut opt);
        if (step + 1) % REPORT_EVERY == 0 {
            losses.push(loss);
        }
    }
    let bits = dp.stats().bits_per_value();
    let ppl = dp.model().eval_perplexity(&val);
    (name.to_string(), losses, bits, ppl)
}

fn main() {
    let warmup = STEPS * 15 / 100; // the paper's 15% warm-up
    let rows: Vec<(String, Vec<f64>, f64, f64)> = vec![
        run("Uncompressed", &|| None),
        run("1-bit Adam", &|| {
            Some(Box::new(OneBitCompressor::new(OneBitFlavor::Adam, warmup)))
        }),
        run("1-bit LAMB", &|| {
            Some(Box::new(OneBitCompressor::new(OneBitFlavor::Lamb, warmup)))
        }),
        run("LLM.265 (2.6b)", &|| {
            Some(Box::new(Llm265TrackingChannel::at_bits(2.6)))
        }),
        run("LLM.265 (1.4b)", &|| {
            Some(Box::new(Llm265TrackingChannel::at_bits(1.4)))
        }),
        run("LLM.265 (0.8b)", &|| {
            Some(Box::new(Llm265TrackingChannel::at_bits(0.8)))
        }),
        run("RTN4-128G", &|| {
            Some(Box::new(RtnQuantizer::symmetric(
                4,
                GroupScheme::Groups(128),
            )))
        }),
        run("RTN2-128G", &|| {
            Some(Box::new(RtnQuantizer::symmetric(
                2,
                GroupScheme::Groups(128),
            )))
        }),
    ];

    let mut table = Table::new(vec![
        "config", "avg bits", "loss@35", "loss@70", "loss@105", "loss@140", "val ppl",
    ]);
    for (name, losses, bits, ppl) in &rows {
        table.row(vec![
            name.clone(),
            f(*bits, 2),
            f(losses[0], 3),
            f(losses[1], 3),
            f(losses[2], 3),
            f(losses[3], 3),
            f(*ppl, 2),
        ]);
    }
    table.print("Fig 10 — data-parallel gradient compression (4 replicas)");
    println!("\nPaper shape: quality ranks LLM.265(2.6) > RTN4 > LLM.265(1.4) > LLM.265(0.8)");
    println!("≈ 1-bit LAMB > RTN2; LLM.265 needs no warm-up or optimizer change.");
}
