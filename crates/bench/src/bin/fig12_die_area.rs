//! Fig 12: die-area comparison of GPU / NIC / CPU versus video codecs
//! normalized to 100 Gb/s, with per-component breakdowns.

use llm265_bench::table::{f, Table};
use llm265_hardware::area::{
    cpu_server, gpu_rtx3090, h264_decoder, h264_encoder, h265_decoder, h265_encoder, instances_for,
    nic_cx5, single_instance_4k60_gbps, Component,
};

fn main() {
    let gpu = gpu_rtx3090();
    let nic = nic_cx5();
    let cpu = cpu_server();

    let mut dies = Table::new(vec!["die", "area (mm^2)", "vs H.264 enc+dec pair"]);
    let pair = h264_encoder().area_mm2 + h264_decoder().area_mm2;
    dies.row(vec![
        format!("{} @7nm", gpu.name),
        f(gpu.area_at_7nm(), 1),
        format!("{:.0}x", gpu.area_at_7nm() / pair),
    ]);
    dies.row(vec![
        format!("{} (measured)", nic.name),
        f(nic.native_area_mm2, 1),
        format!("{:.0}x", nic.native_area_mm2 / pair),
    ]);
    dies.row(vec![
        format!("{} @7nm", cpu.name),
        f(cpu.area_at_7nm(), 1),
        format!("{:.0}x", cpu.area_at_7nm() / pair),
    ]);
    dies.print("Fig 12 (1-3) — datacenter dies vs a 100 Gb/s H.264 codec pair");

    let inst = instances_for(100.0, single_instance_4k60_gbps());
    println!(
        "\n(100 Gb/s = {} aggregated 4K60 instances per codec)",
        inst
    );

    let mut blocks = Table::new(vec![
        "codec @100Gb/s",
        "area (mm^2)",
        "power (W)",
        "inter%",
        "framebuf%",
        "intra%",
        "xform%",
        "entropy%",
        "tensor-only (mm^2)",
    ]);
    for b in [
        h264_encoder(),
        h264_decoder(),
        h265_encoder(),
        h265_decoder(),
    ] {
        let pc = |c: Component| format!("{:.0}", b.component_area(c) / b.area_mm2 * 100.0);
        blocks.row(vec![
            b.name.to_string(),
            f(b.area_mm2, 2),
            f(b.power_w, 2),
            pc(Component::InterPrediction),
            pc(Component::FrameBuffer),
            pc(Component::IntraPrediction),
            pc(Component::Transform),
            pc(Component::Entropy),
            f(b.tensor_only_area(), 2),
        ]);
    }
    blocks.print("Fig 12 (a-d) — codec component breakdown and tensor-only area");
    println!("\nPaper shape: codecs are 1-2 orders of magnitude smaller than the other dies;");
    println!("inter prediction + frame buffer dominate and are dead weight for tensors.");
}
