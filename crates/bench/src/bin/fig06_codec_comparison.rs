//! Fig 6: information efficiency of H.264-, H.265- and AV1-like codecs
//! on tensor compression.
//!
//! The paper sweeps the storage budget and finds the three codecs'
//! accuracy curves overlap above ~1.8 bits/value, motivating the choice
//! of H.265 for availability/throughput reasons (Table 2). We sweep
//! bits/value and report the reconstruction NMSE per profile, plus probe
//! accuracy on the trained model at a mid budget.

use llm265_bench::table::{f, Table};
use llm265_bench::workloads::weight_stack;
use llm265_core::{Llm265Codec, Llm265Config, Profile, ProfileKind, RateTarget, TensorCodec};
use llm265_tensor::stats;

fn main() {
    let stack = weight_stack(3, 128, 64);
    let budgets = [1.2, 1.8, 2.5, 3.5, 5.0];

    let mut table = Table::new(vec!["bits/value", "H.264 nmse", "H.265 nmse", "AV1 nmse"]);
    for &bits in &budgets {
        let mut row = vec![f(bits, 1)];
        for kind in [ProfileKind::H264, ProfileKind::H265, ProfileKind::Av1] {
            let codec = Llm265Codec::with_config(Llm265Config {
                profile: Profile::of(kind),
                ..Llm265Config::default()
            });
            let mut err = 0.0;
            for w in &stack {
                let enc = codec
                    .encode(w, RateTarget::BitsPerValue(bits))
                    .expect("encode");
                let dec = codec.decode(&enc).expect("decode");
                err += stats::tensor_mse(w, &dec) / stats::variance(w.data());
            }
            row.push(f(err / stack.len() as f64, 4));
        }
        table.row(row);
    }
    table.print("Fig 6 — codec-family information efficiency (weight NMSE, lower = better)");
    println!("\nPaper shape: above ~1.8 bits the three curves overlap within noise;");
    println!("H.265 is adopted for availability and throughput, not efficiency.");
}
