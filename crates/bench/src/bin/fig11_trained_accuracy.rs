//! Fig 11: downstream probe accuracy of models trained with DP gradient
//! compression.
//!
//! Paper shape: LLM.265 (2.6 b) and (1.4 b) retain ≥ 96.6% / 95.2% of the
//! uncompressed model's accuracy across the task suite.

use llm265_bench::table::{f, pct, Table};
use llm265_core::Llm265TrackingChannel;
use llm265_distrib::data_parallel::DataParallelTrainer;
use llm265_model::data::{LangConfig, SyntheticLang};
use llm265_model::optimizer::Adam;
use llm265_model::tasks::probe_suite;
use llm265_model::transformer::{Batch, TransformerConfig, TransformerLm};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;

const STEPS: usize = 220;
const REPLICAS: usize = 4;

fn train(make: &dyn Fn() -> Option<Box<dyn LossyCompressor>>) -> (TransformerLm, f64) {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(21));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(22);
    let mut dp = DataParallelTrainer::new(&mut model, REPLICAS);
    if let Some(first) = make() {
        let mut cs: Vec<Box<dyn LossyCompressor>> = vec![first];
        for _ in 1..REPLICAS {
            cs.push(make().expect("compressor"));
        }
        dp = dp.with_compressors(cs);
    }
    for _ in 0..STEPS {
        let shards: Vec<Batch> = (0..REPLICAS)
            .map(|_| lang.sample_batch(1, 40, &mut rng).expect("training data"))
            .collect();
        dp.train_step(&shards, &mut opt);
    }
    let bits = dp.stats().bits_per_value();
    (model, bits)
}

fn main() {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let tasks = probe_suite(&lang, 25, 404).expect("probe tasks");

    type MakeCompressor = Box<dyn Fn() -> Option<Box<dyn LossyCompressor>>>;
    let configs: Vec<(&str, MakeCompressor)> = vec![
        ("Uncompressed", Box::new(|| None)),
        (
            "LLM.265 (2.6b)",
            Box::new(|| {
                Some(Box::new(Llm265TrackingChannel::at_bits(2.6)) as Box<dyn LossyCompressor>)
            }),
        ),
        (
            "LLM.265 (1.4b)",
            Box::new(|| {
                Some(Box::new(Llm265TrackingChannel::at_bits(1.4)) as Box<dyn LossyCompressor>)
            }),
        ),
    ];

    let mut results = Vec::new();
    for (name, make) in &configs {
        let (model, bits) = train(make.as_ref());
        let per_task: Vec<f64> = tasks.iter().map(|t| t.accuracy(&model)).collect();
        results.push((name.to_string(), bits, per_task));
    }

    let mut headers = vec!["task"];
    let names: Vec<String> = results
        .iter()
        .map(|(n, b, _)| format!("{n} [{:.1}b]", b))
        .collect();
    for n in &names {
        headers.push(n);
    }
    let mut table = Table::new(headers);
    for (i, task) in tasks.iter().enumerate() {
        let mut row = vec![task.name.clone()];
        for (_, _, accs) in &results {
            row.push(pct(accs[i]));
        }
        table.row(row);
    }
    // Mean row + retention.
    let means: Vec<f64> = results
        .iter()
        .map(|(_, _, accs)| accs.iter().sum::<f64>() / accs.len() as f64)
        .collect();
    let mut row = vec!["MEAN".to_string()];
    for m in &means {
        row.push(pct(*m));
    }
    table.row(row);
    table.print("Fig 11 — probe accuracy of DP-trained models");

    for (i, (name, _, _)) in results.iter().enumerate().skip(1) {
        println!(
            "{name}: retains {}% of the uncompressed mean accuracy",
            f(means[i] / means[0] * 100.0, 1)
        );
    }
    println!("\nPaper shape: both LLM.265 rates retain >95% of uncompressed accuracy.");
}
