//! Fig 8: KV-cache and activation compression on top of the compressed
//! model — perplexity versus measured bits, against RTN and
//! QuaRot/SpinQuant-style baselines.
//!
//! Substitution note (see DESIGN.md / EXPERIMENTS.md): the paper's KV
//! collapse at 3 bits appears on 70B models with 128k contexts, where
//! attention must discriminate among thousands of positions. Our
//! substrate's 47-position contexts are robust to KV noise down to ~1
//! bit for *every* method, so the KV table mainly demonstrates the rate
//! side: LLM.265 hits its fractional 2.9-bit target while integer-grid
//! baselines' measured rates land 1.5-2 bits higher. The activation path
//! is quality-sensitive at our scale and reproduces the paper's shape:
//! equal perplexity at ~1.5 fewer measured bits.

use llm265_bench::table::{f, Table};
use llm265_bench::workloads::small_trained_lm;
use llm265_core::Llm265Channel;
use llm265_model::transformer::EvalHooks;
use llm265_quant::rotation::RotationQuantizer;
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::channel::LossyCompressor;

fn main() {
    let lm = small_trained_lm(31337).expect("training data");
    // Start from the weight-compressed model, as the paper does (§4.2
    // builds on §4.1's ~3-bit weights).
    let mut model = lm.model.clone();
    model.compress_weights(&mut Llm265Channel::at_bits(3.2));
    let clean = model.eval_perplexity(&lm.eval_batch);
    println!("weight-compressed model perplexity: {clean:.3}");

    // --- KV-cache compression grid.
    let mut kv_table = Table::new(vec!["config", "measured kv bits", "ppl"]);
    let kv_rows: Vec<(&str, Box<dyn LossyCompressor>)> = vec![
        (
            "RTN KV3 (per-token)",
            Box::new(RtnQuantizer::asymmetric(3, GroupScheme::PerRow)),
        ),
        (
            "RTN KV3 (per-tensor)",
            Box::new(RtnQuantizer::asymmetric(3, GroupScheme::PerTensor)),
        ),
        ("QuaRot KV3", Box::new(RotationQuantizer::quarot(3, 64, 5))),
        (
            "SpinQuant KV3",
            Box::new(RotationQuantizer::spinquant(3, 32, 6)),
        ),
        ("LLM.265 KV2.9", Box::new(Llm265Channel::at_bits(2.9))),
        ("LLM.265 KV1.5", Box::new(Llm265Channel::at_bits(1.5))),
    ];
    for (label, mut comp) in kv_rows {
        let mut hooks = EvalHooks {
            kv: Some(comp.as_mut()),
            hidden: None,
        };
        let r = model.eval_with_hooks(&lm.eval_batch, &mut hooks);
        kv_table.row(vec![
            label.to_string(),
            f(r.kv_bits as f64 / r.kv_values.max(1) as f64, 2),
            f(r.perplexity, 3),
        ]);
    }
    kv_table.print("Fig 8 (KV) — KV-cache compression (uncompressed ppl above)");

    // --- Inter-stage activation compression grid.
    let boundaries = [lm.model.n_blocks() / 2 - 1];
    let mut a_table = Table::new(vec!["config", "measured act bits", "ppl"]);
    let a_rows: Vec<(&str, Box<dyn LossyCompressor>)> = vec![
        (
            "RTN A4 (per-token)",
            Box::new(RtnQuantizer::asymmetric(4, GroupScheme::PerRow)),
        ),
        ("QuaRot A4", Box::new(RotationQuantizer::quarot(4, 32, 5))),
        (
            "RTN A3 (per-token)",
            Box::new(RtnQuantizer::asymmetric(3, GroupScheme::PerRow)),
        ),
        ("QuaRot A3", Box::new(RotationQuantizer::quarot(3, 32, 5))),
        (
            "RTN A2 (per-token)",
            Box::new(RtnQuantizer::asymmetric(2, GroupScheme::PerRow)),
        ),
        ("LLM.265 A3.5", Box::new(Llm265Channel::at_bits(3.5))),
        ("LLM.265 A2.5", Box::new(Llm265Channel::at_bits(2.5))),
    ];
    for (label, mut comp) in a_rows {
        let mut hooks = EvalHooks {
            kv: None,
            hidden: Some((comp.as_mut(), &boundaries)),
        };
        let r = model.eval_with_hooks(&lm.eval_batch, &mut hooks);
        a_table.row(vec![
            label.to_string(),
            f(r.hidden_bits as f64 / r.hidden_values.max(1) as f64, 2),
            f(r.perplexity, 3),
        ]);
    }
    a_table.print("Fig 8 (A) — inter-stage activation compression");

    // --- Combined configuration (the paper's final KV2.9 + A3.5 point).
    let mut kv = Llm265Channel::at_bits(2.9);
    let mut act = Llm265Channel::at_bits(3.5);
    let mut hooks = EvalHooks {
        kv: Some(&mut kv),
        hidden: Some((&mut act, &boundaries)),
    };
    let r = model.eval_with_hooks(&lm.eval_batch, &mut hooks);
    println!(
        "\nCombined LLM.265 KV2.9 + A3.5: ppl {:.3} ({:+.1}% vs weight-compressed)",
        r.perplexity,
        (r.perplexity / clean - 1.0) * 100.0
    );
    println!(
        "Memory: KV 16 -> {:.2} bits (5.5x); comm: A 16 -> {:.2} bits (4.6x).",
        r.kv_bits as f64 / r.kv_values.max(1) as f64,
        r.hidden_bits as f64 / r.hidden_values.max(1) as f64
    );
    println!("\nPaper shape: LLM.265 matches the baselines' quality at ~1.5 fewer measured");
    println!("bits on activations; on the KV path every method is safe at our short-context");
    println!("scale, and only LLM.265 actually reaches the fractional 2.9-bit budget.");
}
