//! Fig 14: information efficiency of the three-in-one codec (our software
//! LLM.265 pipeline) versus the 2×4 chained baseline grid — {INT, MXFP} ×
//! {Huffman, Deflate, LZ4, CABAC}.
//!
//! (a) gradient compression: mean-absolute-error versus measured
//! bits/value. (b) weight compression: probe accuracy versus bits/value.
//! Paper shape: under the same error budget the codec uses fewer bits
//! than every chained baseline.

use llm265_bench::table::{f, pct, Table};
use llm265_bench::workloads::small_trained_lm;
use llm265_core::Llm265Channel;
use llm265_quant::chained::{ChainedCodec, LosslessStage, NumericStage};
use llm265_quant::mxfp::MxFormat;
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;
use llm265_tensor::stats;
use llm265_tensor::synthetic::{llm_gradient, GradientProfile};

fn main() {
    // --- (a) Gradient MAE vs bits/value.
    let mut rng = Pcg32::seed_from(50);
    let grads: Vec<_> = (0..3)
        .map(|i| {
            llm_gradient(
                128,
                128,
                &GradientProfile::at_progress(0.2 * i as f64),
                &mut rng,
            )
        })
        .collect();

    let mut contenders: Vec<Box<dyn LossyCompressor>> = Vec::new();
    for bits in [3u32, 4, 6] {
        for stage in LosslessStage::all() {
            contenders.push(Box::new(ChainedCodec::new(NumericStage::Rtn(bits), stage)));
        }
    }
    for fmt in [MxFormat::Mxfp4, MxFormat::Mxfp6, MxFormat::Mxfp8] {
        for stage in LosslessStage::all() {
            contenders.push(Box::new(ChainedCodec::new(NumericStage::Mxfp(fmt), stage)));
        }
    }
    for b in [2.0, 2.5, 3.0, 4.0, 5.0] {
        contenders.push(Box::new(Llm265Channel::at_bits(b)));
    }

    let mut table = Table::new(vec!["codec", "bits/value", "gradient MAE"]);
    let mut points: Vec<(String, f64, f64)> = Vec::new();
    for c in contenders.iter_mut() {
        let mut bits = 0u64;
        let mut values = 0u64;
        let mut mae = 0.0;
        for g in &grads {
            let (out, b) = c.transcode(g);
            bits += b;
            values += g.len() as u64;
            mae += stats::mae(g.data(), out.data());
        }
        let bpv = bits as f64 / values as f64;
        let mae = mae / grads.len() as f64;
        points.push((c.name(), bpv, mae));
    }
    points.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, bpv, mae) in &points {
        table.row(vec![name.clone(), f(*bpv, 2), format!("{mae:.3e}")]);
    }
    table.print("Fig 14(a) — gradient MAE vs measured bits/value (sorted by bits)");

    // Dominance check: for each LLM.265 point, list baselines it beats on
    // both axes.
    let ours: Vec<_> = points
        .iter()
        .filter(|(n, _, _)| n.contains("LLM.265"))
        .collect();
    let theirs: Vec<_> = points
        .iter()
        .filter(|(n, _, _)| !n.contains("LLM.265"))
        .collect();
    let mut dominated = 0;
    for b in &theirs {
        if ours.iter().any(|o| o.1 <= b.1 && o.2 <= b.2) {
            dominated += 1;
        }
    }
    println!(
        "\nLLM.265 Pareto-dominates {dominated}/{} chained baselines (fewer bits AND lower error).",
        theirs.len()
    );

    // --- (b) Weight-compression accuracy vs bits.
    let lm = small_trained_lm(9090).expect("training data");
    let mut table = Table::new(vec!["codec", "bits/value", "probe accuracy"]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for bits in [3u32, 4] {
        for stage in [LosslessStage::Huffman, LosslessStage::Cabac] {
            let mut c = ChainedCodec::new(NumericStage::Rtn(bits), stage);
            let (acc, bpv) = lm.compressed_accuracy(&mut c);
            rows.push((c.name(), bpv, acc));
        }
    }
    for fmt in [MxFormat::Mxfp4, MxFormat::Mxfp6] {
        let mut c = ChainedCodec::new(NumericStage::Mxfp(fmt), LosslessStage::Cabac);
        let (acc, bpv) = lm.compressed_accuracy(&mut c);
        rows.push((c.name(), bpv, acc));
    }
    for b in [2.2, 2.8, 3.5] {
        let mut c = Llm265Channel::at_bits(b);
        let (acc, bpv) = lm.compressed_accuracy(&mut c);
        rows.push((c.name(), bpv, acc));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, bpv, acc) in &rows {
        table.row(vec![name.clone(), f(*bpv, 2), pct(*acc)]);
    }
    table.print("Fig 14(b) — weight-compression accuracy vs measured bits/value");
    println!("\nPaper shape: the codec holds higher accuracy at lower bitrates than every");
    println!("numeric-format + lossless-compressor chain.");
}
