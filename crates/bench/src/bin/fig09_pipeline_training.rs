//! Fig 9: pipeline-parallel training with compressed inter-stage
//! communication — loss and validation perplexity curves.
//!
//! Configurations, as in the paper:
//! - **Uncompressed**: FP16 activations and gradients between stages.
//! - **LLM.265(A)**: activations at 3.5 bits, gradients uncompressed.
//! - **LLM.265(A)+GQ**: activations at 3.5 bits, gradients through plain
//!   8-bit group-wise RTN — the paper's failure case.
//! - **LLM.265(A+G)**: activations at 3.5 bits, gradients through the
//!   residual-compensation scheme (3.5+3.5 bits early, 3.5+8 late).
//!
//! Paper shape: (A) matches or slightly beats uncompressed; (A)+GQ
//! diverges; (A+G) tracks uncompressed at ~10.1 average gradient bits.

use llm265_bench::table::{f, Table};
use llm265_core::gradient::{ResidualCompensator, ResidualCompensatorConfig};
use llm265_core::Llm265Channel;
use llm265_distrib::pipeline::PipelineTrainer;
use llm265_model::data::{LangConfig, SyntheticLang};
use llm265_model::optimizer::Adam;
use llm265_model::transformer::{TransformerConfig, TransformerLm};
use llm265_quant::rtn::{GroupScheme, RtnQuantizer};
use llm265_tensor::channel::LossyCompressor;
use llm265_tensor::rng::Pcg32;

const STEPS: usize = 160;
const STAGES: usize = 2;
const REPORT_EVERY: usize = 40;

struct Curve {
    name: String,
    losses: Vec<f64>,
    val_ppl: Vec<f64>,
    act_bits: f64,
    grad_bits: f64,
}

fn run(
    name: &str,
    act: Option<Box<dyn LossyCompressor>>,
    grad: Option<Box<dyn LossyCompressor>>,
) -> Curve {
    let lang = SyntheticLang::new(&LangConfig::tiny());
    let mut model = TransformerLm::new(&TransformerConfig::tiny(), &mut Pcg32::seed_from(5));
    let mut opt = Adam::new(3e-3);
    let mut rng = Pcg32::seed_from(6);
    let val = lang
        .sample_batch(8, 40, &mut Pcg32::seed_from(7))
        .expect("training data");

    let mut pp = PipelineTrainer::new(&mut model, STAGES);
    if let Some(a) = act {
        pp = pp.with_act_compressor(a);
    }
    if let Some(g) = grad {
        pp = pp.with_grad_compressor(g);
    }
    let mut losses = Vec::new();
    let mut val_ppl = Vec::new();
    for step in 0..STEPS {
        let batch = lang.sample_batch(4, 40, &mut rng).expect("training data");
        let loss = pp.train_step(&batch, &mut opt);
        if (step + 1) % REPORT_EVERY == 0 {
            losses.push(loss);
            val_ppl.push(pp.model().eval_perplexity(&val));
        }
    }
    Curve {
        name: name.to_string(),
        act_bits: pp.act_stats().bits_per_value(),
        grad_bits: pp.grad_stats().bits_per_value(),
        losses,
        val_ppl,
    }
}

fn main() {
    let curves = vec![
        run("Uncompressed", None, None),
        run(
            "LLM.265(A)",
            Some(Box::new(Llm265Channel::at_bits(3.5))),
            None,
        ),
        // Plain low-bit RTN on activation gradients: the failure mode. (At
        // our scale 8-bit RTN is still tolerated, so the failure surfaces
        // at 2 bits; the paper's larger models already fail at 8.)
        run(
            "LLM.265(A)+GQ (RTN2)",
            Some(Box::new(Llm265Channel::at_bits(3.5))),
            Some(Box::new(RtnQuantizer::symmetric(
                2,
                GroupScheme::Groups(128),
            ))),
        ),
        run(
            "LLM.265(A)+G direct 3.5b",
            Some(Box::new(Llm265Channel::at_bits(3.5))),
            Some(Box::new(Llm265Channel::at_bits(3.5))),
        ),
        run(
            "LLM.265(A+G) residual",
            Some(Box::new(Llm265Channel::at_bits(3.5))),
            Some(Box::new(ResidualCompensator::with_config(
                ResidualCompensatorConfig {
                    primary_bits: 3.5,
                    early_residual_bits: 3.5,
                    switch_step: STEPS * 5 / 16, // the paper's 2500/8000 point
                },
            ))),
        ),
    ];

    let mut table = Table::new(vec![
        "config",
        "act bits",
        "grad bits",
        "loss@40",
        "loss@80",
        "loss@120",
        "loss@160",
        "val ppl (final)",
    ]);
    for c in &curves {
        table.row(vec![
            c.name.clone(),
            f(c.act_bits, 2),
            f(c.grad_bits, 2),
            f(c.losses[0], 3),
            f(c.losses[1], 3),
            f(c.losses[2], 3),
            f(c.losses[3], 3),
            f(*c.val_ppl.last().unwrap(), 2),
        ]);
    }
    table.print("Fig 9 — pipeline-parallel training (4-way comparison)");
    println!("\nActivation compression 16 -> 3.5 bits = 78% volume reduction;");
    println!(
        "residual-compensated gradients average ~{:.1} bits (paper: 10.1).",
        llm265_core::gradient::average_bits_per_value(
            &ResidualCompensatorConfig {
                switch_step: STEPS * 5 / 16,
                ..Default::default()
            },
            STEPS,
        )
    );
    println!("Paper shape: (A) ≈ uncompressed; plain gradient RTN hurts; (A+G) recovers.");
}
