//! Hand-rolled JSON output for bench results.
//!
//! The workspace is offline and std-only, so there is no `serde`; this
//! module emits (and appends to) the small, fixed-shape documents that
//! make up the repo's `BENCH_*.json` perf trajectory. Every perf PR runs
//! the benches with `--json` and commits the result next to the code, so
//! regressions show up as a diff instead of folklore.
//!
//! Document shape:
//!
//! ```json
//! {
//!   "bench": "codec_throughput",
//!   "hardware_targets_mb_s": { "encode": 1100.0, "decode": 1300.0 },
//!   "runs": [
//!     {
//!       "label": "after-parallel",
//!       "threads_available": 8,
//!       "samples": [
//!         { "name": "encode/multichunk", "threads": 8,
//!           "median_s": 0.012, "min_s": 0.011,
//!           "bytes": 262144, "mb_per_s": 21.8 }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Appending a run re-uses the writer's own fixed layout: the file always
//! ends with `\n  ]\n}\n`, so a new run is spliced in before that suffix.
//! Only files produced by this module can be appended to.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::microbench::Sample;

/// Suffix every document written by this module ends with; the append
/// path splices new runs immediately before it.
const DOC_SUFFIX: &str = "\n  ]\n}\n";

/// One benchmark sample plus the thread count it ran at.
#[derive(Debug, Clone)]
pub struct ThreadedSample {
    /// The timing summary from [`crate::microbench`].
    pub sample: Sample,
    /// Worker threads the codec was configured with for this sample.
    pub threads: usize,
}

/// One bench invocation's worth of results.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Human label distinguishing runs in the trajectory (e.g.
    /// `before-serial`, `after-parallel`).
    pub label: String,
    /// `std::thread::available_parallelism` on the machine that ran it.
    pub threads_available: usize,
    /// All recorded samples.
    pub samples: Vec<ThreadedSample>,
}

/// Reference throughput targets carried in the document header (the
/// `hardware::engine` NVENC/NVDEC envelope the software codec chases).
#[derive(Debug, Clone, Copy)]
pub struct HardwareTargets {
    /// Hardware encode throughput in MB/s.
    pub encode_mb_s: f64,
    /// Hardware decode throughput in MB/s.
    pub decode_mb_s: f64,
}

/// Writes `run` to `path`, creating the document if the file does not
/// exist and appending to the `runs` array if it does.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or written, or
/// `InvalidData` if an existing file was not produced by this writer.
pub fn write_or_append(
    path: &Path,
    bench: &str,
    targets: HardwareTargets,
    run: &BenchRun,
) -> io::Result<()> {
    let run_text = render_run(run);
    let doc = match fs::read_to_string(path) {
        Ok(existing) => splice_run(&existing, &run_text)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => render_document(bench, targets, &run_text),
        Err(e) => return Err(e),
    };
    fs::write(path, doc)
}

/// Renders a fresh document holding one run.
fn render_document(bench: &str, targets: HardwareTargets, run_text: &str) -> String {
    format!(
        "{{\n  \"bench\": {},\n  \"hardware_targets_mb_s\": {{ \"encode\": {}, \"decode\": {} }},\n  \"runs\": [\n{run_text}{DOC_SUFFIX}",
        escape(bench),
        number(targets.encode_mb_s),
        number(targets.decode_mb_s),
    )
}

/// Splices a rendered run into an existing document's `runs` array.
fn splice_run(existing: &str, run_text: &str) -> io::Result<String> {
    let Some(body) = existing.strip_suffix(DOC_SUFFIX) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "existing bench JSON does not end with the writer's suffix; refusing to append",
        ));
    };
    Ok(format!("{body},\n{run_text}{DOC_SUFFIX}"))
}

/// Renders one run as an indented JSON object (no trailing newline).
fn render_run(run: &BenchRun) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\n      \"label\": {},\n      \"threads_available\": {},\n      \"samples\": [",
        escape(&run.label),
        run.threads_available
    );
    for (i, ts) in run.samples.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n        {{ \"name\": {}, \"threads\": {}, \"median_s\": {}, \"min_s\": {}, \"bytes\": {}, \"mb_per_s\": {} }}",
            escape(&ts.sample.name),
            ts.threads,
            number(ts.sample.median_s),
            number(ts.sample.min_s),
            ts.sample.bytes,
            ts.sample.mb_per_s().map_or_else(|| "null".to_string(), number),
        );
    }
    out.push_str("\n      ]\n    }");
    out
}

/// Formats a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, both valid JSON.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON string literal (quotes included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, median: f64, bytes: u64) -> ThreadedSample {
        ThreadedSample {
            sample: Sample {
                name: name.to_string(),
                median_s: median,
                min_s: median * 0.9,
                bytes,
            },
            threads: 2,
        }
    }

    fn targets() -> HardwareTargets {
        HardwareTargets {
            encode_mb_s: 1100.0,
            decode_mb_s: 1300.0,
        }
    }

    #[test]
    fn fresh_document_has_expected_shape() {
        let run = BenchRun {
            label: "before".to_string(),
            threads_available: 4,
            samples: vec![sample("g/encode", 0.25, 1_000_000)],
        };
        let doc = render_document("codec", targets(), &render_run(&run));
        assert!(doc.starts_with("{\n  \"bench\": \"codec\""));
        assert!(doc.ends_with(DOC_SUFFIX));
        assert!(doc.contains("\"encode\": 1100.0"));
        assert!(doc.contains("\"name\": \"g/encode\""));
        assert!(doc.contains("\"median_s\": 0.25"));
        assert!(doc.contains("\"mb_per_s\": 4.0"));
        // Balanced braces/brackets — a cheap structural validity check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = doc.matches(open).count();
            let c = doc.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn append_splices_a_second_run() {
        let mk = |label: &str| BenchRun {
            label: label.to_string(),
            threads_available: 1,
            samples: vec![sample("g/decode", 0.1, 0)],
        };
        let doc = render_document("codec", targets(), &render_run(&mk("before")));
        let doc = splice_run(&doc, &render_run(&mk("after"))).expect("append");
        assert!(doc.contains("\"label\": \"before\""));
        assert!(doc.contains("\"label\": \"after\""));
        assert!(doc.ends_with(DOC_SUFFIX));
        assert_eq!(doc.matches("\"samples\"").count(), 2);
        // Zero-byte samples carry no throughput.
        assert!(doc.contains("\"mb_per_s\": null"));
    }

    #[test]
    fn append_rejects_foreign_files() {
        let err = splice_run("not a bench document", "x").expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn roundtrip_through_disk_appends() {
        let dir = std::env::temp_dir().join("llm265_bench_json_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        let _ = fs::remove_file(&path);
        let run = BenchRun {
            label: "r1".to_string(),
            threads_available: 2,
            samples: vec![sample("a/b", 0.5, 100)],
        };
        write_or_append(&path, "t", targets(), &run).expect("write");
        write_or_append(&path, "t", targets(), &run).expect("append");
        let doc = fs::read_to_string(&path).expect("read back");
        assert_eq!(doc.matches("\"label\": \"r1\"").count(), 2);
        let _ = fs::remove_file(&path);
    }
}
