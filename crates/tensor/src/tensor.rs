use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major 2-D tensor of `f32` values.
///
/// This is the common currency between the codec, the baselines and the
/// model substrate. Weight matrices, activation matrices, gradients and
/// KV-cache slabs are all represented as `Tensor`s; higher-dimensional
/// tensors are handled by the callers as stacks of 2-D slices, mirroring how
/// the paper maps tensors onto video frames (layer index → temporal axis).
///
/// # Example
///
/// ```
/// use llm265_tensor::Tensor;
///
/// let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(t[(1, 2)], 5.0);
/// assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        // lint:allow(panic): decode paths bound rows·cols before building
        // tensors (codec.rs caps the product at 2^31), so overflow here
        // means a caller bug, not hostile input.
        let len = rows.checked_mul(cols).expect("tensor size overflow");
        Tensor {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        t.data.fill(value);
        t
    }

    /// Creates a tensor from a closure mapping `(row, col)` to a value.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t.data[r * cols + c] = f(r, c);
            }
        }
        t
    }

    /// Creates a tensor by taking ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transposed tensor.
    pub fn transposed(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix multiplication `self (m×k) * rhs (k×n) -> m×n`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dims mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // lint:allow(float-cmp): exact-zero skip is a pure perf
                // shortcut — a true 0.0 contributes nothing to the row.
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds `rhs` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Subtracts `rhs` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns `self - rhs` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.sub_assign(rhs);
        out
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Minimum and maximum values. Returns `(0.0, 0.0)` for an empty tensor.
    pub fn min_max(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in &self.data {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        (lo, hi)
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let t = Tensor::from_fn(2, 3, |r, c| (10 * r + c) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t[(1, 1)], 11.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed()[(4, 2)], t[(2, 4)]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(2, 2, |r, c| (r * 2 + c + 1) as f32);
        let id = Tensor::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn min_max_and_max_abs() {
        let t = Tensor::from_vec(1, 4, vec![-3.0, 0.5, 2.0, -0.1]);
        assert_eq!(t.min_max(), (-3.0, 2.0));
        assert_eq!(t.max_abs(), 3.0);
    }

    #[test]
    fn arithmetic_in_place() {
        let mut a = Tensor::full(2, 2, 2.0);
        let b = Tensor::full(2, 2, 0.5);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.5; 4]);
        a.sub_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0; 4]);
    }

    #[test]
    fn empty_tensor_edge_cases() {
        let t = Tensor::zeros(0, 7);
        assert!(t.is_empty());
        assert_eq!(t.min_max(), (0.0, 0.0));
        assert_eq!(t.max_abs(), 0.0);
        assert_eq!(t.sq_norm(), 0.0);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(t.row(0), &[0.0, 1.0, 2.0]);
        let mut t = t;
        t.row_mut(1)[0] = 99.0;
        assert_eq!(t[(1, 0)], 99.0);
    }
}
