//! Software FP16 / BF16 conversion.
//!
//! The paper's tensors live in FP16 or BF16 and are rounded to 8-bit
//! integers before entering the video codec (§3.2). We emulate both
//! half-precision formats in software so the "stored precision" of every
//! experiment matches the paper's: baselines quantize from FP16 values, and
//! uncompressed communication volume is counted at 16 bits per element.

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve a NaN payload bit so NaNs stay NaNs.
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan | ((mant >> 13) as u16 & 0x3ff).min(0x3ff);
    }

    // Re-bias: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal range.
        let half_exp = (unbiased + 15) as u32;
        let mut half_mant = mant >> 13;
        // Round to nearest even on the 13 truncated bits.
        let rem = mant & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (half_mant & 1) == 1) {
            half_mant += 1;
        }
        // Mantissa carry may bump the exponent (possibly to infinity).
        let combined = (half_exp << 10) + half_mant;
        return sign | combined as u16;
    }
    if unbiased >= -25 {
        // Subnormal range: shift in the implicit leading 1.
        let full_mant = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mut half_mant = full_mant >> shift;
        let rem_mask = (1u32 << shift) - 1;
        let rem = full_mant & rem_mask;
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
            half_mant += 1;
        }
        return sign | half_mant as u16;
    }
    sign // underflow to signed zero
}

/// Converts IEEE 754 binary16 bits to an `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;

    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: normalize. Value is m·2^-24; after k left-shifts
            // the exponent is -15 + 1 - k, i.e. e = -k with the +1 folded
            // into the formula below.
            let mut e = 0i32;
            let mut m = m;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            let m = (m & 0x3ff) << 13;
            let e = (127 - 15 + e + 1) as u32;
            sign | (e << 23) | m
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through FP16 precision (the paper's storage format).
pub fn round_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Converts an `f32` to bfloat16 bits with round-to-nearest-even.
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Quiet the NaN, keep it NaN after truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rem = bits & 0xffff;
    let mut hi = bits >> 16;
    if rem > 0x8000 || (rem == 0x8000 && (hi & 1) == 1) {
        hi += 1;
    }
    hi as u16
}

/// Converts bfloat16 bits to an `f32`.
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Rounds an `f32` through BF16 precision.
pub fn round_bf16(x: f32) -> f32 {
    bf16_bits_to_f32(f32_to_bf16_bits(x))
}

/// Storage precision of an uncompressed tensor, used for bits-per-value
/// accounting in the communication experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE binary16 — 16 bits/value.
    #[default]
    F16,
    /// bfloat16 — 16 bits/value.
    Bf16,
    /// IEEE binary32 — 32 bits/value.
    F32,
}

impl Precision {
    /// Bits each stored value occupies.
    pub fn bits(self) -> u32 {
        match self {
            Precision::F16 | Precision::Bf16 => 16,
            Precision::F32 => 32,
        }
    }

    /// Rounds a value through this precision.
    pub fn round(self, x: f32) -> f32 {
        match self {
            Precision::F16 => round_f16(x),
            Precision::Bf16 => round_bf16(x),
            Precision::F32 => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.099975586,
        ] {
            let y = round_f16(x);
            assert_eq!(round_f16(y), y, "idempotent for {x}");
        }
        assert_eq!(round_f16(1.0), 1.0);
        assert_eq!(round_f16(-2.5), -2.5);
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert!(round_f16(1.0e5).is_infinite());
        assert!(round_f16(-1.0e5).is_infinite());
        assert!(round_f16(-1.0e5) < 0.0);
    }

    #[test]
    fn f16_subnormals() {
        let tiny = 6.0e-8_f32; // near f16 min subnormal 5.96e-8
        let r = round_f16(tiny);
        assert!(r > 0.0 && r < 1.3e-7, "got {r}");
        // Deep underflow flushes to zero.
        assert_eq!(round_f16(1.0e-12), 0.0);
        assert!(round_f16(-1.0e-12).to_bits() == (-0.0f32).to_bits());
    }

    #[test]
    fn f16_nan_preserved() {
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn f16_relative_error_bounded_in_normal_range() {
        let mut x = 1.0e-4_f32;
        while x < 6.0e4 {
            let r = round_f16(x);
            let rel = ((r - x) / x).abs();
            assert!(rel < 1.0 / 1024.0, "rel err {rel} at {x}");
            x *= 1.37;
        }
    }

    #[test]
    fn bf16_roundtrip_and_precision() {
        assert_eq!(round_bf16(1.0), 1.0);
        let x = 3.15159_f32;
        let r = round_bf16(x);
        assert!(((r - x) / x).abs() < 1.0 / 128.0);
        assert!(round_bf16(f32::NAN).is_nan());
        // bf16 has f32's range: no overflow at 1e30.
        assert!(round_bf16(1.0e30).is_finite());
    }

    #[test]
    fn bf16_round_to_nearest_even() {
        // 1.0 + 2^-9 rounds to nearest-even at bf16's 7-bit mantissa.
        let x = f32::from_bits(0x3f80_8000); // halfway between two bf16 values
        let r = round_bf16(x);
        assert!(r == 1.0 || r == f32::from_bits(0x3f81_0000));
        // Even tie-break picks 1.0 (mantissa 0).
        assert_eq!(r, 1.0);
    }

    #[test]
    fn precision_bits() {
        assert_eq!(Precision::F16.bits(), 16);
        assert_eq!(Precision::Bf16.bits(), 16);
        assert_eq!(Precision::F32.bits(), 32);
        assert_eq!(Precision::F32.round(1.2345678), 1.2345678);
    }

    #[test]
    fn f16_mantissa_carry_propagates() {
        // A mantissa of all ones must carry into the exponent when rounded up.
        let x = f32::from_bits(0x3fff_ffff); // just under 2.0
        assert_eq!(round_f16(x), 2.0);
    }
}
