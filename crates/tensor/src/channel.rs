//! The lossy-compression interface shared by every compressor in the
//! reproduction.
//!
//! The distributed-training simulator, the evaluation harness and the
//! benchmark binaries all treat compressors uniformly: hand a tensor in,
//! get the reconstruction plus the compressed size back. LLM.265, every
//! baseline quantizer and the chained codecs of Fig 14 implement this
//! trait.

use crate::half::Precision;
use crate::Tensor;

/// A lossy tensor compressor, viewed as a transparent channel: callers see
/// only the reconstruction and the wire size.
pub trait LossyCompressor {
    /// Display name used in experiment tables.
    fn name(&self) -> String;

    /// Compresses and immediately decompresses `t`, returning the
    /// reconstruction and the compressed size in bits.
    ///
    /// Takes `&mut self` because some compressors are stateful (error
    /// feedback, warm-up schedules, step counters).
    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64);

    /// Average bits per value of the last/typical transcode, if the
    /// compressor has a fixed rate; informational only.
    fn nominal_bits_per_value(&self) -> Option<f64> {
        None
    }
}

/// The "no compression" channel: values pass through at storage precision
/// (FP16/BF16 rounding), costing 16 bits each — the uncompressed baseline
/// in every training experiment.
#[derive(Debug, Clone, Copy)]
pub struct Uncompressed {
    precision: Precision,
}

impl Uncompressed {
    /// Uncompressed channel at the given storage precision.
    pub fn new(precision: Precision) -> Self {
        Uncompressed { precision }
    }
}

impl Default for Uncompressed {
    fn default() -> Self {
        Uncompressed::new(Precision::F16)
    }
}

impl LossyCompressor for Uncompressed {
    fn name(&self) -> String {
        "Uncompressed".to_string()
    }

    fn transcode(&mut self, t: &Tensor) -> (Tensor, u64) {
        let out = t.map(|x| self.precision.round(x));
        let bits = t.len() as u64 * self.precision.bits() as u64;
        (out, bits)
    }

    fn nominal_bits_per_value(&self) -> Option<f64> {
        Some(self.precision.bits() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncompressed_is_16_bits_and_near_lossless() {
        let t = Tensor::from_fn(8, 8, |r, c| (r as f32 - 3.5) * 0.01 + c as f32 * 0.001);
        let mut ch = Uncompressed::default();
        let (out, bits) = ch.transcode(&t);
        assert_eq!(bits, 64 * 16);
        for (a, b) in t.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-7);
        }
        assert_eq!(ch.nominal_bits_per_value(), Some(16.0));
    }

    #[test]
    fn f32_precision_is_exact() {
        let t = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32 * 0.377);
        let mut ch = Uncompressed::new(Precision::F32);
        let (out, bits) = ch.transcode(&t);
        assert_eq!(out, t);
        assert_eq!(bits, 16 * 32);
    }
}
