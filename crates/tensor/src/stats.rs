//! Distortion and distribution metrics.
//!
//! The paper's quality constraint for the pipeline ablation is a mean
//! square error budget (MSE ≤ 0.01, Fig 2b); its distribution arguments
//! rest on bell-shapedness (entropy-coding win) and outlier mass
//! (transform-coding win). This module provides those measurements.

use crate::Tensor;

/// True when `a` and `b` agree within an absolute/relative tolerance of
/// `tol`: `|a - b| <= tol * max(1, |a|, |b|)`.
///
/// This is the tolerance helper the float-discipline lint points codec
/// math at instead of exact `==`/`!=` on floats; non-finite inputs only
/// compare equal when identical (`inf == inf`, never NaN).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // lint:allow(float-cmp): bitwise-equal fast path, also the only
        // way two infinities of the same sign can compare equal.
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// [`approx_eq`] at the default tolerance used across the workspace.
pub fn approx_eq_default(a: f64, b: f64) -> bool {
    approx_eq(a, b, 1e-9)
}

/// Mean of a slice (0.0 if empty).
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice (0.0 if empty).
pub fn variance(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f64 {
    variance(xs).sqrt()
}

/// Excess kurtosis: 0 for a normal distribution, > 0 for heavy tails.
pub fn kurtosis(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = variance(xs);
    // lint:allow(float-cmp): degenerate-distribution guard — variance is
    // exactly 0.0 only for a constant slice, where kurtosis is undefined.
    if var == 0.0 {
        return 0.0;
    }
    let m4 = xs.iter().map(|&x| (x as f64 - m).powi(4)).sum::<f64>() / xs.len() as f64;
    m4 / (var * var) - 3.0
}

/// Mean square error between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mae(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum::<f64>()
        / a.len() as f64
}

/// MSE between two tensors.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn tensor_mse(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "tensor_mse shape mismatch");
    mse(a.data(), b.data())
}

/// Peak signal-to-noise ratio in dB given a peak value.
///
/// Returns `f64::INFINITY` for identical inputs.
pub fn psnr(a: &[f32], b: &[f32], peak: f64) -> f64 {
    let e = mse(a, b);
    // lint:allow(float-cmp): exact-zero MSE (identical inputs) is the one
    // case where the log10 below would produce -inf instead of +inf PSNR.
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / e).log10()
    }
}

/// Shannon entropy (bits/symbol) of a byte stream — the lower bound any
/// order-0 entropy coder (e.g. Huffman) can reach on it.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Fraction of values whose magnitude exceeds `k` standard deviations —
/// the paper's working definition of "outliers" in tensor distributions.
pub fn outlier_fraction(xs: &[f32], k: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let sd = std_dev(xs);
    // lint:allow(float-cmp): constant-slice guard; σ is exactly 0.0 there
    // and the threshold test below would divide meaning out of the result.
    if sd == 0.0 {
        return 0.0;
    }
    let thr = k * sd;
    xs.iter().filter(|&&x| (x as f64 - m).abs() > thr).count() as f64 / xs.len() as f64
}

/// Ratio of the max |value| to the distribution's standard deviation; the
/// "dynamic range" figure the transform-coding discussion (Fig 3) relies on.
pub fn peak_to_sigma(xs: &[f32]) -> f64 {
    let sd = std_dev(xs);
    // lint:allow(float-cmp): constant-slice guard against dividing by an
    // exactly-zero σ below.
    if sd == 0.0 {
        return 0.0;
    }
    let peak = xs.iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()));
    peak / sd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn mean_and_variance_known() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(outlier_fraction(&[], 3.0), 0.0);
    }

    #[test]
    fn mse_and_mae_known() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(mse(&a, &b), 12.5);
        assert_eq!(mae(&a, &b), 3.5);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = [1.0f32, 2.0];
        assert!(psnr(&a, &a, 1.0).is_infinite());
        let b = [1.1f32, 2.0];
        assert!(psnr(&a, &b, 1.0) > 0.0);
    }

    #[test]
    fn entropy_bounds() {
        // Constant stream: 0 bits.
        assert_eq!(byte_entropy(&[7u8; 100]), 0.0);
        // All 256 symbols equally: 8 bits.
        let all: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&all) - 8.0).abs() < 1e-12);
        // Two equiprobable symbols: 1 bit.
        let two: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        assert!((byte_entropy(&two) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_entropy_below_uniform() {
        // Quantized normal data has lower entropy than uniform — the 0.4
        // bits/value entropy-coding win in Fig 2(b) rests on this.
        let mut rng = Pcg32::seed_from(3);
        let normal: Vec<u8> = (0..40_000)
            .map(|_| (128.0 + 24.0 * rng.normal()).clamp(0.0, 255.0) as u8)
            .collect();
        let uniform: Vec<u8> = (0..40_000).map(|_| rng.below(256) as u8).collect();
        assert!(byte_entropy(&normal) < byte_entropy(&uniform) - 0.5);
    }

    #[test]
    fn kurtosis_of_normal_near_zero() {
        let mut rng = Pcg32::seed_from(11);
        let xs: Vec<f32> = (0..60_000).map(|_| rng.normal() as f32).collect();
        assert!(kurtosis(&xs).abs() < 0.15, "kurtosis {}", kurtosis(&xs));
    }

    #[test]
    fn kurtosis_detects_heavy_tails() {
        let mut rng = Pcg32::seed_from(12);
        let xs: Vec<f32> = (0..60_000).map(|_| rng.laplace(1.0) as f32).collect();
        assert!(kurtosis(&xs) > 2.0, "laplace excess kurtosis should be ~3");
    }

    #[test]
    fn outlier_fraction_behaviour() {
        let mut xs = vec![0.0f32; 1000];
        xs[0] = 100.0;
        // One huge value among zeros dominates sigma, so with k=3 the single
        // spike is the only outlier.
        let f = outlier_fraction(&xs, 3.0);
        assert!((f - 0.001).abs() < 1e-9, "got {f}");
        assert!(peak_to_sigma(&xs) > 10.0);
    }

    #[test]
    fn tensor_mse_matches_slice_mse() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 5.0]);
        assert_eq!(tensor_mse(&a, &b), 0.25);
    }
}
