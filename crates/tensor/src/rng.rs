//! Deterministic random number generation.
//!
//! Every experiment in this repository takes an explicit seed and uses this
//! module exclusively, so all tables and figures reproduce bit-for-bit
//! across runs and machines. Three std-only generators are provided:
//!
//! - [`Pcg32`] — PCG-XSH-RR 64/32, the workhorse for simulation workloads.
//! - [`SplitMix64`] — a tiny stateless-feeling mixer, mainly used to expand
//!   one user seed into the larger state of other generators.
//! - [`Xoshiro256`] — xoshiro256**, a 64-bit generator with a 256-bit state
//!   for bulk test-input generation in the [`crate::check`] harness.
//!
//! Nothing here links against an external registry crate: the build must
//! resolve fully offline.

/// A PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use llm265_tensor::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from(7);
/// let mut b = Pcg32::seed_from(7);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed with the default stream.
    pub fn seed_from(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator with an explicit stream selector, letting callers
    /// derive independent generators from one logical seed.
    #[must_use]
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator; used to give each layer /
    /// replica / experiment its own stream from one master seed.
    pub fn fork(&mut self, tag: u64) -> Pcg32 {
        let seed = self.next_u64() ^ tag.wrapping_mul(0x9e3779b97f4a7c15);
        Pcg32::with_stream(seed, tag.wrapping_add(1))
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Unbiased via rejection sampling on the multiply-shift trick.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or `bound > u32::MAX as usize`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        assert!(bound <= u32::MAX as usize, "bound too large");
        self.below(bound as u32) as usize
    }

    /// Standard normal sample via Box–Muller (one value per call; the pair's
    /// second half is discarded to keep the generator state simple).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.f64();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }

    /// Normal sample with explicit mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Laplace(0, b) sample — used for heavy-tailed gradient bodies.
    pub fn laplace(&mut self, b: f64) -> f64 {
        let u = self.f64() - 0.5;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u32) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64: a 64-bit generator with a single word of state.
///
/// Weak on its own for simulation, but ideal as a *seed expander*: every
/// output is a strong mix of the counter, so consecutive seeds (0, 1, 2…)
/// produce uncorrelated streams. [`Xoshiro256`] seeds itself through it, as
/// recommended by the xoshiro authors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 64-bit output, 256-bit state, period `2^256 - 1`.
///
/// Used by the [`crate::check`] property-test harness to derive per-case
/// input generators; the wide state makes seed collisions across thousands
/// of generated cases a non-issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through [`SplitMix64`].
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64 uniformly random bits (the `**` scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from(123);
        let mut b = Pcg32::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from(1);
        let mut b = Pcg32::seed_from(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, got {same} collisions"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Pcg32::seed_from(9);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        let expect = n / 7;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from(77);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn laplace_is_symmetric_heavy_tailed() {
        let mut rng = Pcg32::seed_from(31);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.laplace(1.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Laplace variance is 2b^2 = 2.
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - 2.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut master = Pcg32::seed_from(1000);
        let mut a = master.fork(0);
        let mut b = master.fork(1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known-answer outputs of the published SplitMix64 algorithm for
        // seed 0 (Vigna's C reference implementation).
        let mut sm = SplitMix64::seed_from(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
        // Consecutive seeds decorrelate (the whole point of the mixer).
        let a = SplitMix64::seed_from(1).next_u64();
        let b = SplitMix64::seed_from(2).next_u64();
        assert!((a ^ b).count_ones() > 8, "consecutive seeds too correlated");
    }

    #[test]
    fn xoshiro_is_deterministic_and_uniform_enough() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Crude equidistribution check on the top bit.
        let mut ones = 0usize;
        let n = 10_000;
        for _ in 0..n {
            ones += (a.next_u64() >> 63) as usize;
        }
        assert!(
            (ones as i64 - (n / 2) as i64).abs() < 300,
            "top-bit bias: {ones}/{n}"
        );
    }

    #[test]
    fn xoshiro_streams_from_different_seeds_are_disjoint() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
