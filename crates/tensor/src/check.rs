//! Minimal in-repo property-testing harness.
//!
//! The build must resolve with no network access, so the workspace cannot
//! depend on `proptest`. This module supplies the small slice of that
//! functionality the test suites actually use: run a property over many
//! deterministically seeded random cases and, on failure, report the exact
//! case number and seed so the failure replays with zero ambiguity.
//!
//! Shrinking is deliberately out of scope — properties here draw their
//! inputs from an explicit [`Pcg32`], so a failing `(seed, case)` pair is
//! already a one-line reproducer.
//!
//! # Example
//!
//! ```
//! use llm265_tensor::check::Checker;
//!
//! Checker::new(32).run("addition commutes", |rng| {
//!     let a = rng.below(1000);
//!     let b = rng.below(1000);
//!     if a + b == b + a {
//!         Ok(())
//!     } else {
//!         Err(format!("{a} + {b} mismatch"))
//!     }
//! });
//! ```

use crate::rng::{Pcg32, SplitMix64};

/// Runs a property over a number of seeded random cases.
#[derive(Debug, Clone)]
pub struct Checker {
    cases: usize,
    seed: u64,
}

impl Default for Checker {
    /// 32 cases from seed 0 — roughly the per-test budget the previous
    /// proptest configuration used.
    fn default() -> Self {
        Checker::new(32)
    }
}

impl Checker {
    /// A checker that runs `cases` random cases from the default seed.
    #[must_use]
    pub fn new(cases: usize) -> Self {
        Checker { cases, seed: 0 }
    }

    /// Overrides the master seed (e.g. to replay a reported failure).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `prop` once per case with an independent, deterministic RNG.
    ///
    /// The property returns `Ok(())` on success and `Err(message)` on
    /// failure; assertion macros inside the closure also work, but the
    /// `Err` path produces a better report (name, case index, master seed).
    ///
    /// # Panics
    ///
    /// Panics with a replayable report if any case fails.
    pub fn run<F>(&self, name: &str, mut prop: F)
    where
        F: FnMut(&mut Pcg32) -> Result<(), String>,
    {
        // Expand the master seed through SplitMix64 so case RNGs are
        // decorrelated even for adjacent master seeds.
        let mut expander = SplitMix64::seed_from(self.seed);
        for case in 0..self.cases {
            let case_seed = expander.next_u64();
            let mut rng = Pcg32::seed_from(case_seed);
            if let Err(msg) = prop(&mut rng) {
                panic!(
                    "property '{name}' failed at case {case}/{} \
                     (master seed {}, case seed {case_seed:#x}): {msg}",
                    self.cases, self.seed
                );
            }
        }
    }
}

/// Shorthand: runs `prop` for `cases` cases with the default seed.
///
/// # Panics
///
/// Panics with a replayable report if any case fails.
pub fn forall<F>(name: &str, cases: usize, prop: F)
where
    F: FnMut(&mut Pcg32) -> Result<(), String>,
{
    Checker::new(cases).run(name, prop);
}

/// `assert!`-style helper for use inside properties: returns an `Err` with
/// the formatted message when `cond` is false.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        Checker::new(17).run("counts cases", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn case_rngs_are_deterministic_across_runs() {
        let mut first = Vec::new();
        Checker::new(8).run("collect", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        Checker::new(8).run("collect", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        // Each case sees a different stream.
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "property 'always fails' failed at case 0")]
    fn failing_property_reports_case_and_seed() {
        Checker::new(4).run("always fails", |_| Err("boom".into()));
    }

    #[test]
    fn prop_ensure_formats_message() {
        let inner = |rng: &mut Pcg32| -> Result<(), String> {
            let x = rng.below(10);
            prop_ensure!(x < 10, "x was {x}");
            prop_ensure!(x >= 10, "x was {x}, expected >= 10");
            Ok(())
        };
        let mut rng = Pcg32::seed_from(1);
        let err = inner(&mut rng).unwrap_err();
        assert!(err.contains("expected >= 10"), "{err}");
    }

    #[test]
    fn different_master_seeds_produce_different_cases() {
        let mut a = Vec::new();
        Checker::new(4).with_seed(1).run("a", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        Checker::new(4).with_seed(2).run("b", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_ne!(a, b);
    }
}
