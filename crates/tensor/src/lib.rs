//! Tensor substrate for the LLM.265 reproduction.
//!
//! This crate provides the data plumbing every other crate builds on:
//!
//! - [`Tensor`]: a dense, row-major 2-D `f32` tensor with the handful of
//!   linear-algebra helpers the codec and model substrates need.
//! - [`half`]: software FP16 / BF16 conversion (the paper stores tensors in
//!   FP16/BF16 and quantizes to 8 bits before feeding the codec).
//! - [`stats`]: distortion and distribution metrics (MSE, PSNR, entropy,
//!   kurtosis) used throughout the evaluation harness.
//! - [`rng`]: a small, fully deterministic PCG-style random number generator
//!   so every experiment in EXPERIMENTS.md reproduces bit-for-bit.
//! - [`synthetic`]: generators for tensors with the statistical structure the
//!   paper identifies as load-bearing for LLM tensors — bell-shaped bodies,
//!   channel-wise scale structure, and heavy-tailed outliers (§3.1).
//!
//! # Example
//!
//! ```
//! use llm265_tensor::{synthetic, stats, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed_from(42);
//! let w = synthetic::llm_weight(64, 64, &synthetic::WeightProfile::default(), &mut rng);
//! assert_eq!(w.shape(), (64, 64));
//! // Weights are bell-shaped: excess kurtosis well above a uniform's.
//! assert!(stats::kurtosis(w.data()) > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod channel;
pub mod check;
pub mod half;
pub mod rng;
pub mod stats;
pub mod synthetic;
mod tensor;

pub use tensor::Tensor;
