//! Synthetic LLM-tensor generators.
//!
//! We do not have LLaMA / Pythia checkpoints, so every experiment runs on
//! synthetic tensors that reproduce the statistical structure §3.1 of the
//! paper identifies as the reason video codecs work on tensors:
//!
//! 1. **Bell-shaped bodies** — weights/activations/gradients follow a normal
//!    or Laplacian distribution (entropy coding win, Fig 2b step 2);
//! 2. **Channel-wise scale structure** — each input channel has its own
//!    scale, so the tensor "viewed as an image" has edges and planar regions
//!    (intra-prediction win, Fig 4);
//! 3. **Heavy-tailed outliers** — rare values orders of magnitude beyond the
//!    body (transform-coding win, Fig 3).
//!
//! Generators are parameterized so experiments can sweep each property.

use crate::rng::Pcg32;
use crate::Tensor;

/// Parameters of the synthetic weight-matrix generator.
///
/// Defaults are tuned so the generated matrices have kurtosis, outlier
/// fraction and channel-scale spread in the range reported for LLaMA-family
/// projection weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightProfile {
    /// Standard deviation of the central body.
    pub body_std: f64,
    /// Log-normal sigma of per-column (input-channel) scales; 0 disables
    /// channel structure.
    pub channel_spread: f64,
    /// Probability that an element is an outlier.
    pub outlier_prob: f64,
    /// Outlier magnitude multiplier relative to the body std.
    pub outlier_scale: f64,
    /// Strength of low-rank smooth structure (what intra prediction finds).
    pub smooth_strength: f64,
    /// Rank of the smooth component.
    pub smooth_rank: usize,
    /// Amplitude (in `body_std` units) of the *banded* per-channel means:
    /// groups of adjacent channels share a mean offset, producing the
    /// sharp vertical "edges" the paper's Fig 4 shows in weight images.
    pub band_strength: f64,
    /// Channels per band.
    pub band_width: usize,
}

impl Default for WeightProfile {
    fn default() -> Self {
        WeightProfile {
            body_std: 0.02,
            channel_spread: 0.5,
            outlier_prob: 1.0e-3,
            outlier_scale: 12.0,
            smooth_strength: 0.6,
            smooth_rank: 4,
            band_strength: 1.5,
            band_width: 6,
        }
    }
}

impl WeightProfile {
    /// A profile with no channel structure and no outliers — i.i.d. noise,
    /// the hardest case for prediction-based coding.
    pub fn iid() -> Self {
        WeightProfile {
            channel_spread: 0.0,
            outlier_prob: 0.0,
            smooth_strength: 0.0,
            band_strength: 0.0,
            ..Self::default()
        }
    }
}

/// Generates a weight matrix with LLM-like structure (see module docs).
pub fn llm_weight(rows: usize, cols: usize, p: &WeightProfile, rng: &mut Pcg32) -> Tensor {
    // Per-column channel scales: log-normal, matching the channel-wise
    // distribution property from AWQ/SmoothQuant the paper cites.
    let col_scale: Vec<f64> = (0..cols)
        .map(|_| (p.channel_spread * rng.normal()).exp())
        .collect();

    // Low-rank smooth field: sum of r outer products of slowly varying
    // vectors; this is the "edges and planar blocks" structure intra
    // prediction exploits.
    let rank = p.smooth_rank.max(1);
    let mut row_basis = vec![vec![0.0f64; rows]; rank];
    let mut col_basis = vec![vec![0.0f64; cols]; rank];
    for k in 0..rank {
        smooth_walk(&mut row_basis[k], rng);
        smooth_walk(&mut col_basis[k], rng);
    }

    // Banded per-channel means: sharp steps every `band_width` columns.
    let band_w = p.band_width.max(1);
    let band_level: Vec<f64> = {
        let n_bands = cols.div_ceil(band_w);
        let levels: Vec<f64> = (0..n_bands)
            .map(|_| p.band_strength * rng.normal())
            .collect();
        (0..cols).map(|c| levels[c / band_w]).collect()
    };

    let mut t = Tensor::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let mut smooth = 0.0;
            if p.smooth_strength > 0.0 {
                for k in 0..rank {
                    smooth += row_basis[k][r] * col_basis[k][c];
                }
                smooth *= p.smooth_strength / (rank as f64).sqrt();
            }
            let mut v = p.body_std * (col_scale[c] * (rng.normal() + smooth) + band_level[c]);
            if p.outlier_prob > 0.0 && rng.chance(p.outlier_prob) {
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                v += sign * p.body_std * p.outlier_scale * (1.0 + rng.f64());
            }
            t[(r, c)] = v as f32;
        }
    }
    t
}

/// Generates a stack of `layers` weight matrices whose profiles drift
/// slightly with depth — the paper's 4-D video tensor with the layer index
/// as the temporal channel (§3, footnote 1). Deliberately, consecutive
/// layers are *not* pixel-correlated: the paper finds inter-frame prediction
/// does not help (Fig 2b step 5→6).
pub fn llm_weight_stack(
    layers: usize,
    rows: usize,
    cols: usize,
    p: &WeightProfile,
    rng: &mut Pcg32,
) -> Vec<Tensor> {
    (0..layers)
        .map(|l| {
            let mut pl = p.clone();
            // Later layers are mildly harder to compress (larger spread),
            // motivating the variable bit-width search B = k·l + b.
            pl.channel_spread = p.channel_spread * (1.0 + 0.08 * l as f64);
            pl.outlier_prob = p.outlier_prob * (1.0 + 0.15 * l as f64);
            let mut fork = rng.fork(l as u64);
            llm_weight(rows, cols, &pl, &mut fork)
        })
        .collect()
}

/// Parameters of the activation generator. Activations have much stronger
/// channel outliers than weights (§2.1 "Activation Compression").
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationProfile {
    /// Body standard deviation.
    pub body_std: f64,
    /// Fraction of channels that are persistent outlier channels.
    pub outlier_channel_frac: f64,
    /// Scale multiplier of outlier channels.
    pub outlier_channel_scale: f64,
    /// Per-token scale jitter (sequence-position structure).
    pub token_jitter: f64,
}

impl Default for ActivationProfile {
    fn default() -> Self {
        ActivationProfile {
            body_std: 1.0,
            outlier_channel_frac: 0.01,
            outlier_channel_scale: 20.0,
            token_jitter: 0.15,
        }
    }
}

/// Generates an activation matrix (`tokens × channels`) with persistent
/// outlier channels, the structure SmoothQuant/QuaRot exist to fight.
pub fn llm_activation(
    tokens: usize,
    channels: usize,
    p: &ActivationProfile,
    rng: &mut Pcg32,
) -> Tensor {
    let chan_scale: Vec<f64> = (0..channels)
        .map(|_| {
            if rng.chance(p.outlier_channel_frac) {
                p.outlier_channel_scale * (0.5 + rng.f64())
            } else {
                (0.25 * rng.normal()).exp()
            }
        })
        .collect();
    Tensor::from_fn(tokens, channels, |_t, c| {
        let tok_scale = 1.0 + p.token_jitter * rng.normal();
        (p.body_std * chan_scale[c] * tok_scale * rng.normal()) as f32
    })
}

/// Parameters of the gradient generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientProfile {
    /// Laplace scale of the body (gradients are heavier-tailed than weights).
    pub body_scale: f64,
    /// Per-dimension range variance in orders of magnitude. The paper
    /// observes this grows from 1 to 3 orders of magnitude over training
    /// (§5.1), which is why late-stage residuals need 8-bit coding.
    pub range_orders: f64,
    /// Probability of spike outliers.
    pub spike_prob: f64,
    /// Spike magnitude multiplier.
    pub spike_scale: f64,
}

impl Default for GradientProfile {
    fn default() -> Self {
        GradientProfile {
            body_scale: 1.0e-3,
            range_orders: 1.0,
            spike_prob: 5.0e-4,
            spike_scale: 40.0,
        }
    }
}

impl GradientProfile {
    /// Profile at a given training progress in `[0, 1]`: range variance
    /// grows from 1 to 3 orders of magnitude, per §5.1.
    pub fn at_progress(progress: f64) -> Self {
        let p = progress.clamp(0.0, 1.0);
        GradientProfile {
            range_orders: 1.0 + 2.0 * p,
            ..Self::default()
        }
    }
}

/// Generates a weight-gradient matrix: Laplacian body, per-row scale spread
/// of `range_orders` orders of magnitude, rare large spikes.
pub fn llm_gradient(rows: usize, cols: usize, p: &GradientProfile, rng: &mut Pcg32) -> Tensor {
    let ln10 = std::f64::consts::LN_10;
    let row_scale: Vec<f64> = (0..rows)
        .map(|_| (p.range_orders * ln10 * (rng.f64() - 0.5)).exp())
        .collect();
    Tensor::from_fn(rows, cols, |r, _c| {
        let mut v = p.body_scale * row_scale[r] * rng.laplace(1.0);
        if p.spike_prob > 0.0 && rng.chance(p.spike_prob) {
            v *= p.spike_scale;
        }
        v as f32
    })
}

/// Generates a KV-cache slab (`positions × head_dim`) — smoother along the
/// sequence axis than activations, with mild channel structure.
pub fn kv_cache_slab(positions: usize, head_dim: usize, rng: &mut Pcg32) -> Tensor {
    let chan_scale: Vec<f64> = (0..head_dim).map(|_| (0.3 * rng.normal()).exp()).collect();
    let mut t = Tensor::zeros(positions, head_dim);
    let mut prev = vec![0.0f64; head_dim];
    for pos in 0..positions {
        for d in 0..head_dim {
            // AR(1) along the sequence: keys/values evolve slowly with
            // position, giving intra prediction vertical structure.
            let innov = rng.normal();
            prev[d] = 0.8 * prev[d] + 0.6 * innov;
            t[(pos, d)] = (chan_scale[d] * prev[d]) as f32;
        }
    }
    t
}

/// Random-walk smooth vector used for the low-rank structure.
fn smooth_walk(out: &mut [f64], rng: &mut Pcg32) {
    let mut acc = rng.normal();
    for o in out.iter_mut() {
        acc = 0.95 * acc + 0.12 * rng.normal();
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn weight_has_bell_body_and_outliers() {
        let mut rng = Pcg32::seed_from(100);
        let w = llm_weight(128, 128, &WeightProfile::default(), &mut rng);
        // Heavy tails vs. pure normal.
        assert!(stats::kurtosis(w.data()) > 1.0);
        // Peak dominated by outliers.
        assert!(stats::peak_to_sigma(w.data()) > 4.0);
    }

    #[test]
    fn iid_profile_has_no_structure() {
        let mut rng = Pcg32::seed_from(101);
        let w = llm_weight(128, 128, &WeightProfile::iid(), &mut rng);
        assert!(stats::kurtosis(w.data()).abs() < 0.5);
    }

    #[test]
    fn weight_generation_is_deterministic() {
        let p = WeightProfile::default();
        let a = llm_weight(32, 32, &p, &mut Pcg32::seed_from(7));
        let b = llm_weight(32, 32, &p, &mut Pcg32::seed_from(7));
        assert_eq!(a, b);
    }

    #[test]
    fn weight_stack_layers_differ() {
        let mut rng = Pcg32::seed_from(8);
        let stack = llm_weight_stack(3, 16, 16, &WeightProfile::default(), &mut rng);
        assert_eq!(stack.len(), 3);
        assert_ne!(stack[0], stack[1]);
        assert_ne!(stack[1], stack[2]);
    }

    #[test]
    fn channel_structure_shows_in_column_scales() {
        let mut rng = Pcg32::seed_from(9);
        let p = WeightProfile {
            channel_spread: 1.0,
            outlier_prob: 0.0,
            smooth_strength: 0.0,
            ..WeightProfile::default()
        };
        let w = llm_weight(256, 64, &p, &mut rng);
        // Per-column std devs should vary by much more than sampling noise.
        let stds: Vec<f64> = (0..64)
            .map(|c| {
                let col: Vec<f32> = (0..256).map(|r| w[(r, c)]).collect();
                stats::std_dev(&col)
            })
            .collect();
        let lo = stds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = stds.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo > 3.0, "column scale spread {}", hi / lo);
    }

    #[test]
    fn activations_have_outlier_channels() {
        let mut rng = Pcg32::seed_from(10);
        let p = ActivationProfile {
            outlier_channel_frac: 0.05,
            ..ActivationProfile::default()
        };
        let a = llm_activation(256, 128, &p, &mut rng);
        let stds: Vec<f64> = (0..128)
            .map(|c| {
                let col: Vec<f32> = (0..256).map(|r| a[(r, c)]).collect();
                stats::std_dev(&col)
            })
            .collect();
        let hi = stds.iter().cloned().fold(0.0, f64::max);
        let med = {
            let mut s = stds.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(hi / med > 5.0, "outlier channel ratio {}", hi / med);
    }

    #[test]
    fn gradient_range_grows_with_progress() {
        let mut rng = Pcg32::seed_from(11);
        let early = llm_gradient(128, 128, &GradientProfile::at_progress(0.0), &mut rng);
        let late = llm_gradient(128, 128, &GradientProfile::at_progress(1.0), &mut rng);
        let spread = |t: &Tensor| {
            let stds: Vec<f64> = (0..t.rows()).map(|r| stats::std_dev(t.row(r))).collect();
            let lo = stds
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1e-12);
            let hi = stds.iter().cloned().fold(0.0, f64::max);
            hi / lo
        };
        assert!(
            spread(&late) > 5.0 * spread(&early),
            "late spread {} vs early {}",
            spread(&late),
            spread(&early)
        );
    }

    #[test]
    fn kv_slab_is_sequence_correlated() {
        let mut rng = Pcg32::seed_from(12);
        let kv = kv_cache_slab(128, 32, &mut rng);
        // Adjacent positions should correlate strongly (AR(1) with 0.8).
        let mut num = 0.0;
        let mut den = 0.0;
        for pos in 1..128 {
            for d in 0..32 {
                num += (kv[(pos, d)] * kv[(pos - 1, d)]) as f64;
                den += (kv[(pos, d)] * kv[(pos, d)]) as f64;
            }
        }
        let rho = num / den;
        assert!(rho > 0.5, "sequence autocorrelation {rho}");
    }
}
