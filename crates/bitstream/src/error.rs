//! The shared error taxonomy for every decode path in the workspace.
//!
//! The static-analysis gate (`cargo run -p xtask -- lint`) denies panics in
//! the codec hot paths, so everything a hostile bitstream can trigger must
//! be representable here. One enum serves all layers — `bitstream` entropy
//! coders, the `videocodec` decoder, and the `core` tensor codec — so
//! errors propagate with `?` and no cross-crate conversion glue.

use std::error::Error;
use std::fmt;

/// Why a compressed stream could not be decoded (or a codec request could
/// not be served).
///
/// The variants form the taxonomy DESIGN.md documents:
///
/// - [`CodecError::Truncated`] — the stream ended before a required field
///   or payload; the name of the missing piece is attached.
/// - [`CodecError::Corrupt`] — the bytes are present but structurally
///   impossible (bad magic, an LZ match pointing before the start of the
///   output, a Huffman code outside the table…).
/// - [`CodecError::Unsupported`] — valid framing, but a version, profile
///   or size this implementation does not handle.
/// - [`CodecError::InvalidInput`] — the *caller's* request was malformed
///   (encode-side: empty tensor, QP out of range, non-positive budget).
/// - [`CodecError::LimitExceeded`] — a declared size is implausible for
///   the stream carrying it; refusing early keeps hostile headers from
///   turning into multi-gigabyte allocations. Encode-side it also covers
///   tensors whose shape or payload length would overflow a serialized
///   header field (oversized inputs fail instead of truncating silently).
/// - [`CodecError::Internal`] — the codec's own machinery failed (a
///   worker thread panicked); never caused by stream contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Stream ended before the named field or payload.
    Truncated(&'static str),
    /// Structurally invalid stream contents.
    Corrupt(&'static str),
    /// Valid framing but an unsupported version/profile/feature.
    Unsupported(&'static str),
    /// Malformed caller request (encode-side parameter errors).
    InvalidInput(String),
    /// A declared size exceeds the decoder's resource limits.
    LimitExceeded(&'static str),
    /// Codec-internal failure (e.g. a panicked worker thread).
    Internal(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated stream: {what}"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CodecError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CodecError::LimitExceeded(what) => write!(f, "resource limit exceeded: {what}"),
            CodecError::Internal(what) => write!(f, "internal codec failure: {what}"),
        }
    }
}

impl Error for CodecError {}

/// Historical alias: the bitstream crate's decode APIs predate the shared
/// taxonomy and were typed against `DecodeError`.
pub type DecodeError = CodecError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_detail() {
        assert_eq!(
            CodecError::Truncated("frame payload").to_string(),
            "truncated stream: frame payload"
        );
        assert_eq!(
            CodecError::InvalidInput("qp 99 out of range".into()).to_string(),
            "invalid input: qp 99 out of range"
        );
        assert!(CodecError::LimitExceeded("x").to_string().contains("limit"));
    }

    #[test]
    fn variants_compare_by_category_and_payload() {
        assert_eq!(
            CodecError::Corrupt("bad magic"),
            CodecError::Corrupt("bad magic")
        );
        assert_ne!(
            CodecError::Corrupt("bad magic"),
            CodecError::Truncated("bad magic")
        );
    }
}
