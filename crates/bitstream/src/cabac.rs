//! Adaptive binary arithmetic coding (CABAC-style).
//!
//! H.264/H.265 terminate their pipelines in CABAC: binary symbols coded by
//! an arithmetic coder whose per-context probabilities adapt to the stream
//! (§2.2). We implement the same idea with an LZMA-style binary range coder
//! — 32-bit range, 11-bit adaptive probability per context, carry-correct
//! byte output — which is simpler than the H.265 state machine while
//! providing the same compression behaviour (within ~1%): frequent symbols
//! cost well under a bit, bypass symbols cost exactly one bit.
//!
//! # Example
//!
//! ```
//! use llm265_bitstream::cabac::{CabacEncoder, CabacDecoder, Prob};
//!
//! let bits = [true, false, false, false, true, false, false, false];
//! let mut enc = CabacEncoder::new();
//! let mut ctx = Prob::default();
//! for &b in &bits {
//!     enc.encode_bit(&mut ctx, b);
//! }
//! let bytes = enc.finish();
//!
//! let mut dec = CabacDecoder::new(&bytes);
//! let mut ctx = Prob::default();
//! for &b in &bits {
//!     assert_eq!(dec.decode_bit(&mut ctx), b);
//! }
//! ```

/// Number of bits in the probability model.
const PROB_BITS: u32 = 11;
/// Probability value representing 1.0.
const PROB_ONE: u16 = 1 << PROB_BITS;
/// Adaptation shift: smaller adapts faster. 5 matches LZMA's default and is
/// close to CABAC's effective adaptation rate.
const ADAPT_SHIFT: u32 = 5;
/// Renormalization threshold.
const TOP: u32 = 1 << 24;

/// An adaptive probability context. Stores P(bit = 0) in 11 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prob(u16);

impl Default for Prob {
    fn default() -> Self {
        Prob(PROB_ONE / 2)
    }
}

impl Prob {
    /// Creates a context with an explicit initial probability of zero,
    /// expressed in 1/2048 units and clamped away from certainty.
    #[must_use]
    pub fn with_p0(p0: u16) -> Self {
        Prob(p0.clamp(32, PROB_ONE - 32))
    }

    /// The current probability that the next bit is 0, in `[0, 1]`.
    pub fn p0(&self) -> f64 {
        self.0 as f64 / PROB_ONE as f64
    }

    /// The information cost, in bits, of coding `bit` under this context —
    /// used by the encoder's rate-distortion estimates without actually
    /// coding anything.
    pub fn cost_bits(&self, bit: bool) -> f64 {
        let p = if bit { 1.0 - self.p0() } else { self.p0() };
        -(p.max(1.0 / PROB_ONE as f64)).log2()
    }

    /// Applies the adaptation step for an observed `bit`, exactly as the
    /// arithmetic coder does internally. Exposed so rate-distortion cost
    /// estimators can evolve context models without coding anything.
    pub fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> ADAPT_SHIFT;
        } else {
            self.0 += (PROB_ONE - self.0) >> ADAPT_SHIFT;
        }
    }
}

/// Binary arithmetic encoder.
#[derive(Debug, Clone)]
pub struct CabacEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for CabacEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl CabacEncoder {
    /// Creates an encoder with empty output.
    pub fn new() -> Self {
        CabacEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Encodes one bit under an adaptive context.
    pub fn encode_bit(&mut self, ctx: &mut Prob, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(ctx.0);
        if !bit {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        ctx.update(bit);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes one equiprobable ("bypass") bit — costs exactly 1 bit.
    pub fn encode_bypass(&mut self, bit: bool) {
        self.range >>= 1;
        if bit {
            self.low += self.range as u64;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `n` bypass bits, MSB first.
    ///
    /// Fast path: bins are folded into groups with a single hoisted
    /// renormalization per group instead of one check per bin. A bypass
    /// bin halves `range`, and after renormalization `range` lies in
    /// `[2^24, 2^32)`, so `8 - range.leading_zeros()` (between 1 and 8)
    /// bins can always run straight-line before `range` can drop below
    /// the renorm threshold — the skipped per-bin checks provably cannot
    /// fire mid-group, making the output byte-identical to coding each
    /// bin through [`Self::encode_bypass`] (pinned by a cross-coding
    /// test).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value` has bits above `n`.
    pub fn encode_bypass_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n == 64 || value < (1u64 << n));
        let mut left = n;
        while left > 0 {
            debug_assert!(self.range >= TOP, "range invariant broken");
            let group = left.min(8 - self.range.leading_zeros());
            // `group <= left`, so the saturation never engages; it states
            // the lower bound explicitly instead of relying on unchecked
            // wrap-around in release builds.
            let next = left.saturating_sub(group);
            let mut range = self.range;
            let mut add = 0u64;
            for i in (next..left).rev() {
                range >>= 1;
                if (value >> i) & 1 == 1 {
                    add += u64::from(range);
                }
            }
            self.low += add;
            self.range = range;
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
            left = next;
        }
    }

    /// Encodes an unsigned Exp-Golomb value in bypass mode (H.265 uses this
    /// for large coefficient remainders). Prefix zeros and the value field
    /// each go through the batched [`Self::encode_bypass_bits`] fast path
    /// (the combined field can reach 65 bits at `u32::MAX`, so it is not a
    /// single call).
    pub fn encode_ue_bypass(&mut self, value: u32) {
        let v = value as u64 + 1;
        let len = 64 - v.leading_zeros();
        self.encode_bypass_bits(0, len - 1);
        self.encode_bypass_bits(v, len);
    }

    /// Encodes a unary-truncated prefix under a context array: emits `1`
    /// bits while `value > i`, then a `0` (unless `max` is reached). Context
    /// index saturates at the array end.
    pub fn encode_truncated_unary(&mut self, ctxs: &mut [Prob], value: u32, max: u32) {
        for (idx, i) in (0..max).enumerate() {
            let ctx_idx = idx.min(ctxs.len() - 1);
            if value > i {
                self.encode_bit(&mut ctxs[ctx_idx], true);
            } else {
                self.encode_bit(&mut ctxs[ctx_idx], false);
                return;
            }
        }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = ((self.low >> 32) & 1) as u8;
            if self.cache_size > 0 {
                self.out.push(self.cache.wrapping_add(carry));
                for _ in 1..self.cache_size {
                    self.out.push(0xFFu8.wrapping_add(carry));
                }
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Number of bytes emitted so far (excluding buffered carry bytes).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been flushed yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Flushes the coder and returns the bitstream.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Binary arithmetic decoder matching [`CabacEncoder`].
#[derive(Debug, Clone)]
pub struct CabacDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> CabacDecoder<'a> {
    /// Creates a decoder over an encoded stream. Reading past the end of
    /// `input` yields zero bytes, matching the encoder's flush padding.
    pub fn new(input: &'a [u8]) -> Self {
        let mut dec = CabacDecoder {
            code: 0,
            range: u32::MAX,
            input,
            pos: 1, // first byte is the encoder's initial cache byte (0)
        };
        for _ in 0..4 {
            dec.code = (dec.code << 8) | dec.next_byte() as u32;
        }
        dec
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit under an adaptive context.
    pub fn decode_bit(&mut self, ctx: &mut Prob) -> bool {
        let bound = (self.range >> PROB_BITS) * u32::from(ctx.0);
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        ctx.update(bit);
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }

    /// Decodes one bypass bit.
    pub fn decode_bypass(&mut self) -> bool {
        self.range >>= 1;
        let bit = if self.code >= self.range {
            self.code -= self.range;
            true
        } else {
            false
        };
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }

    /// Decodes `n` bypass bits, MSB first.
    ///
    /// Mirror of the encoder's batched fast path: bins run straight-line
    /// in groups sized by the renorm horizon (`8 - range.leading_zeros()`
    /// after renormalization), with `range`/`code` held in locals and one
    /// hoisted renormalization per group. Decodes exactly the same bits
    /// as bin-by-bin [`Self::decode_bypass`] calls.
    pub fn decode_bypass_bits(&mut self, n: u32) -> u64 {
        let mut v = 0u64;
        let mut left = n;
        while left > 0 {
            debug_assert!(self.range >= TOP, "range invariant broken");
            let group = left.min(8 - self.range.leading_zeros());
            let mut range = self.range;
            let mut code = self.code;
            for _ in 0..group {
                range >>= 1;
                let bit = code >= range;
                if bit {
                    code -= range;
                }
                v = (v << 1) | u64::from(bit);
            }
            self.range = range;
            self.code = code;
            while self.range < TOP {
                self.code = (self.code << 8) | self.next_byte() as u32;
                self.range <<= 8;
            }
            left -= group;
        }
        v
    }

    /// Decodes an unsigned Exp-Golomb value from bypass bits.
    pub fn decode_ue_bypass(&mut self) -> u32 {
        let mut zeros = 0u32;
        while !self.decode_bypass() {
            zeros += 1;
            if zeros > 32 {
                // Corrupt stream; saturate rather than spin forever.
                return u32::MAX;
            }
        }
        let suffix = self.decode_bypass_bits(zeros);
        // A corrupt suffix can push the value past u32::MAX; saturate
        // instead of wrapping it into a small bogus coefficient.
        u32::try_from(((1u64 << zeros) | suffix) - 1).unwrap_or(u32::MAX)
    }

    /// Decodes a truncated-unary prefix (inverse of
    /// [`CabacEncoder::encode_truncated_unary`]).
    pub fn decode_truncated_unary(&mut self, ctxs: &mut [Prob], max: u32) -> u32 {
        for (idx, i) in (0..max).enumerate() {
            let ctx_idx = idx.min(ctxs.len() - 1);
            if !self.decode_bit(&mut ctxs[ctx_idx]) {
                return i;
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bits(bits: &[bool]) -> usize {
        let mut enc = CabacEncoder::new();
        let mut ctx = Prob::default();
        for &b in bits {
            enc.encode_bit(&mut ctx, b);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        let mut ctx = Prob::default();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut ctx), b, "bit {i}");
        }
        bytes.len()
    }

    #[test]
    fn roundtrip_empty() {
        let enc = CabacEncoder::new();
        let bytes = enc.finish();
        let _ = CabacDecoder::new(&bytes); // must not panic
    }

    #[test]
    fn roundtrip_all_patterns() {
        roundtrip_bits(&[true]);
        roundtrip_bits(&[false]);
        roundtrip_bits(&[true; 1000]);
        roundtrip_bits(&[false; 1000]);
        let alternating: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        roundtrip_bits(&alternating);
    }

    #[test]
    fn skewed_stream_beats_one_bit_per_symbol() {
        // 1-in-16 ones: entropy ~0.337 bits/symbol. Adaptive coder should
        // land well below 0.6 bits/symbol after warm-up.
        let bits: Vec<bool> = (0..32_768).map(|i| i % 16 == 0).collect();
        let bytes = roundtrip_bits(&bits);
        let bps = bytes as f64 * 8.0 / bits.len() as f64;
        assert!(bps < 0.6, "bits/symbol {bps}");
    }

    #[test]
    fn bypass_costs_one_bit() {
        let n = 8192u32;
        let mut enc = CabacEncoder::new();
        for i in 0..n {
            enc.encode_bypass(i % 3 == 0);
        }
        let bytes = enc.finish();
        let bps = bytes.len() as f64 * 8.0 / n as f64;
        assert!((bps - 1.0).abs() < 0.02, "bypass bits/symbol {bps}");
        let mut dec = CabacDecoder::new(&bytes);
        for i in 0..n {
            assert_eq!(dec.decode_bypass(), i % 3 == 0);
        }
    }

    #[test]
    fn bypass_bits_roundtrip() {
        let mut enc = CabacEncoder::new();
        enc.encode_bypass_bits(0b1011_0010, 8);
        enc.encode_bypass_bits(0x3FFFF, 18);
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        assert_eq!(dec.decode_bypass_bits(8), 0b1011_0010);
        assert_eq!(dec.decode_bypass_bits(18), 0x3FFFF);
    }

    #[test]
    fn bypass_bits_full_width_boundary() {
        // n = 64 walks `left` down through every renorm-limited group,
        // ending on the final group where the lower bound saturates at
        // zero — the exact edge the batched grouping must not cross.
        let values = [u64::MAX, 0, 0x8000_0000_0000_0001, 0x5555_5555_5555_5555];
        let mut enc = CabacEncoder::new();
        for &v in &values {
            enc.encode_bypass_bits(v, 64);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.decode_bypass_bits(64), v);
        }
    }

    #[test]
    fn ue_bypass_roundtrip() {
        let values = [0u32, 1, 2, 5, 31, 32, 1000, 1 << 20];
        let mut enc = CabacEncoder::new();
        for &v in &values {
            enc.encode_ue_bypass(v);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.decode_ue_bypass(), v);
        }
    }

    #[test]
    fn truncated_unary_roundtrip() {
        let max = 6;
        let values = [0u32, 1, 2, 5, 6, 6, 3];
        let mut enc = CabacEncoder::new();
        let mut ctxs = [Prob::default(); 3];
        for &v in &values {
            enc.encode_truncated_unary(&mut ctxs, v, max);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        let mut ctxs = [Prob::default(); 3];
        for &v in &values {
            assert_eq!(dec.decode_truncated_unary(&mut ctxs, max), v);
        }
    }

    #[test]
    fn interleaved_context_and_bypass() {
        let mut enc = CabacEncoder::new();
        let mut c0 = Prob::default();
        let mut c1 = Prob::with_p0(1800);
        for i in 0..5000u32 {
            enc.encode_bit(&mut c0, i % 7 == 0);
            enc.encode_bypass(i % 2 == 0);
            enc.encode_bit(&mut c1, i % 3 == 0);
        }
        let bytes = enc.finish();
        let mut dec = CabacDecoder::new(&bytes);
        let mut c0 = Prob::default();
        let mut c1 = Prob::with_p0(1800);
        for i in 0..5000u32 {
            assert_eq!(dec.decode_bit(&mut c0), i % 7 == 0);
            assert_eq!(dec.decode_bypass(), i % 2 == 0);
            assert_eq!(dec.decode_bit(&mut c1), i % 3 == 0);
        }
    }

    /// Deterministic 64-bit LCG for adversarial bit patterns (no external
    /// rng dependency in this crate).
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn batched_bypass_is_byte_identical_to_bin_by_bin() {
        // The batched fast path must produce the exact bytes of the
        // bin-by-bin loop, across widths that straddle every renorm
        // position — including max-magnitude (all-ones), alternating and
        // sparse values, interleaved with adaptive context bits so the
        // range enters each batch at varied positions.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut plan: Vec<(u64, u32, bool)> = Vec::new();
        for round in 0..2000u32 {
            let n = (lcg(&mut state) % 64 + 1) as u32;
            let v = match round % 4 {
                0 => lcg(&mut state),
                1 => u64::MAX,              // all-ones
                2 => 0xAAAA_AAAA_AAAA_AAAA, // alternating
                _ => 1,                     // sparse
            } & if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let ctx_bit = lcg(&mut state).is_multiple_of(3);
            plan.push((v, n, ctx_bit));
        }

        let mut batched = CabacEncoder::new();
        let mut serial = CabacEncoder::new();
        let mut ctx_a = Prob::default();
        let mut ctx_b = Prob::default();
        for &(v, n, ctx_bit) in &plan {
            batched.encode_bypass_bits(v, n);
            for i in (0..n).rev() {
                serial.encode_bypass((v >> i) & 1 == 1);
            }
            batched.encode_bit(&mut ctx_a, ctx_bit);
            serial.encode_bit(&mut ctx_b, ctx_bit);
        }
        let bytes_batched = batched.finish();
        let bytes_serial = serial.finish();
        assert_eq!(bytes_batched, bytes_serial);

        // Both decode styles must read the same values back.
        let mut dec_batched = CabacDecoder::new(&bytes_batched);
        let mut dec_serial = CabacDecoder::new(&bytes_batched);
        let mut ctx_a = Prob::default();
        let mut ctx_b = Prob::default();
        for &(v, n, ctx_bit) in &plan {
            assert_eq!(dec_batched.decode_bypass_bits(n), v);
            let mut w = 0u64;
            for _ in 0..n {
                w = (w << 1) | u64::from(dec_serial.decode_bypass());
            }
            assert_eq!(w, v);
            assert_eq!(dec_batched.decode_bit(&mut ctx_a), ctx_bit);
            assert_eq!(dec_serial.decode_bit(&mut ctx_b), ctx_bit);
        }
    }

    #[test]
    fn batched_ue_bypass_is_byte_identical_to_bin_by_bin() {
        let values = [0u32, 1, 2, 5, 31, 32, 1000, 1 << 20, u32::MAX];
        let mut batched = CabacEncoder::new();
        let mut serial = CabacEncoder::new();
        for &value in &values {
            batched.encode_ue_bypass(value);
            // The pre-batching formulation: leading zeros bin by bin, then
            // the value field MSB-first bin by bin.
            let v = value as u64 + 1;
            let len = 64 - v.leading_zeros();
            for _ in 0..len - 1 {
                serial.encode_bypass(false);
            }
            for i in (0..len).rev() {
                serial.encode_bypass((v >> i) & 1 == 1);
            }
        }
        let bytes = batched.finish();
        assert_eq!(bytes, serial.finish());
        let mut dec = CabacDecoder::new(&bytes);
        for &value in &values {
            assert_eq!(dec.decode_ue_bypass(), value);
        }
    }

    #[test]
    fn cost_estimate_tracks_actual_size() {
        // Estimated cost should be within ~10% of actual bytes on a long
        // stationary stream.
        let bits: Vec<bool> = (0..20_000).map(|i| i % 5 == 0).collect();
        let mut est = 0.0;
        let mut enc = CabacEncoder::new();
        let mut ctx = Prob::default();
        for &b in &bits {
            est += ctx.cost_bits(b);
            enc.encode_bit(&mut ctx, b);
        }
        let actual = enc.finish().len() as f64 * 8.0;
        assert!(
            (est - actual).abs() / actual < 0.1,
            "est {est} actual {actual}"
        );
    }

    #[test]
    fn prob_update_moves_toward_observed() {
        let mut p = Prob::default();
        for _ in 0..100 {
            p.update(false);
        }
        assert!(p.p0() > 0.9);
        for _ in 0..200 {
            p.update(true);
        }
        assert!(p.p0() < 0.1);
    }
}
