//! Canonical Huffman coding of byte streams.
//!
//! One of the four general-purpose compressors in the paper's baseline
//! grid (Fig 14/15). Code lengths are limited to 15 bits via the exact
//! package-merge algorithm, then assigned canonically so the header only
//! needs to carry one 4-bit length per symbol.

use crate::bits::{BitReader, BitWriter};
use crate::{ByteCodec, DecodeError};

/// Maximum code length; 15 matches DEFLATE and keeps headers at 4 bits.
const MAX_LEN: u32 = 15;
/// Array size for per-length tables indexed `1..=MAX_LEN`.
const NUM_LENS: usize = 16;

/// Canonical Huffman byte-stream compressor.
///
/// # Example
///
/// ```
/// use llm265_bitstream::{ByteCodec, huffman::Huffman};
///
/// let packed = Huffman.compress(b"mississippi river");
/// assert_eq!(Huffman.decompress(&packed).unwrap(), b"mississippi river");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Huffman;

/// Computes length-limited Huffman code lengths (package-merge).
///
/// Returns a 256-entry array of code lengths; symbols with zero frequency
/// get length 0. A single distinct symbol gets length 1.
pub fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let mut leaves: Vec<(u64, u8)> = (0u8..=255)
        .zip(freqs.iter())
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (f, s))
        .collect();
    match leaves.len() {
        0 => return lengths,
        1 => {
            lengths[usize::from(leaves[0].1)] = 1;
            return lengths;
        }
        _ => {}
    }
    leaves.sort_unstable();

    // Package-merge: after L rounds of "package pairs and merge with the
    // leaf list", the 2(n-1) cheapest packages' leaf multiplicities are the
    // optimal length-limited code lengths.
    type Pkg = (u64, Vec<u8>);
    let leaf_pkgs: Vec<Pkg> = leaves.iter().map(|&(f, s)| (f, vec![s])).collect();
    let mut current = leaf_pkgs.clone();
    for _ in 1..MAX_LEN {
        let mut packaged: Vec<Pkg> = Vec::with_capacity(current.len() / 2);
        let mut it = current.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            let mut syms = a.1;
            syms.extend_from_slice(&b.1);
            packaged.push((a.0 + b.0, syms));
        }
        // Merge packaged with the original leaves, keeping sorted order.
        let mut merged = Vec::with_capacity(packaged.len() + leaf_pkgs.len());
        let (mut i, mut j) = (0, 0);
        while i < leaf_pkgs.len() || j < packaged.len() {
            let take_leaf = match (leaf_pkgs.get(i), packaged.get(j)) {
                (Some(l), Some(p)) => l.0 <= p.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_leaf {
                merged.push(leaf_pkgs[i].clone());
                i += 1;
            } else {
                merged.push(std::mem::take(&mut packaged[j]));
                j += 1;
            }
        }
        current = merged;
    }
    let take = 2 * (leaves.len() - 1);
    for pkg in current.into_iter().take(take) {
        for s in pkg.1 {
            lengths[usize::from(s)] += 1;
        }
    }
    lengths
}

/// Assigns canonical codes for the given lengths. Returns `(code, len)` per
/// symbol; zero-length symbols get `(0, 0)`.
pub fn canonical_codes(lengths: &[u8; 256]) -> [(u16, u8); 256] {
    let mut codes = [(0u16, 0u8); 256];
    // Symbols ordered by (length, symbol value).
    let mut order: Vec<u8> = (0..=255u8)
        .filter(|&s| lengths[usize::from(s)] > 0)
        .collect();
    order.sort_by_key(|&s| (lengths[usize::from(s)], s));
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &order {
        let len = lengths[usize::from(s)];
        // The order is sorted by length and lengths are capped at
        // MAX_LEN, so the delta is in 0..=15; `.min` keeps a hostile
        // length table from turning this into a 255-bit shift.
        code <<= u32::from(len - prev_len).min(MAX_LEN);
        // Lengths are capped at MAX_LEN = 15, so codes fit in 15 bits.
        codes[usize::from(s)] = ((code & 0x7FFF) as u16, len);
        code += 1;
        prev_len = len;
    }
    codes
}

struct CanonicalDecoder {
    // Per length 1..=15: first canonical code, count, base index into `syms`.
    first_code: [u32; NUM_LENS],
    count: [u32; NUM_LENS],
    base: [u32; NUM_LENS],
    syms: Vec<u8>,
}

impl CanonicalDecoder {
    fn new(lengths: &[u8; 256]) -> Self {
        let mut count = [0u32; NUM_LENS];
        let mut order: Vec<u8> = (0..=255u8)
            .filter(|&s| lengths[usize::from(s)] > 0)
            .collect();
        order.sort_by_key(|&s| (lengths[usize::from(s)], s));
        for &s in &order {
            // Lengths above MAX_LEN cannot occur (the wire format carries
            // 4-bit lengths); the cap bounds the index for hostile input.
            count[usize::from(lengths[usize::from(s)]).min(NUM_LENS - 1)] += 1;
        }
        let mut first_code = [0u32; NUM_LENS];
        let mut base = [0u32; NUM_LENS];
        let mut code = 0u32;
        let mut idx = 0u32;
        for len in 1..=MAX_LEN as usize {
            code <<= 1;
            first_code[len] = code;
            base[len] = idx;
            code += count[len];
            idx += count[len];
        }
        CanonicalDecoder {
            first_code,
            count,
            base,
            syms: order,
        }
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u8, DecodeError> {
        let mut code = 0u32;
        for len in 1..=MAX_LEN as usize {
            code = (code << 1) | ((r.read_bits(1)? & 1) as u32);
            let offset = code.wrapping_sub(self.first_code[len]);
            if offset < self.count[len] {
                let idx = usize::try_from(self.base[len] + offset)
                    .map_err(|_| DecodeError::Corrupt("invalid huffman code"))?;
                return Ok(self.syms[idx]);
            }
        }
        Err(DecodeError::Corrupt("invalid huffman code"))
    }
}

impl ByteCodec for Huffman {
    fn name(&self) -> &'static str {
        "Huffman"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[usize::from(b)] += 1;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);

        let mut w = BitWriter::new();
        // Header: original length, the used symbol range, then 4-bit code
        // lengths for that range only (tensor-level streams typically use
        // a narrow centered alphabet, so this keeps headers small).
        w.write_bits(data.len() as u64, 57);
        let first: usize = lengths.iter().position(|&l| l > 0).unwrap_or(0);
        let last: usize = lengths.iter().rposition(|&l| l > 0).unwrap_or(0);
        w.write_bits(first as u64, 8);
        w.write_bits(last as u64, 8);
        for &len in &lengths[first..=last] {
            w.write_bits(u64::from(len), 4);
        }
        for &b in data {
            let (code, len) = codes[usize::from(b)];
            w.write_bits(u64::from(code), u32::from(len));
        }
        w.finish()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut r = BitReader::new(data);
        let n = r.read_bits(57)? as usize;
        // Every symbol costs at least one bit, so a declared length beyond
        // the total bit count is impossible; reject it before sizing
        // anything by it.
        if n > data.len().saturating_mul(8) {
            return Err(DecodeError::LimitExceeded("huffman declared length"));
        }
        let first = r.read_bits(8)? as usize;
        let last = r.read_bits(8)? as usize;
        if first > last {
            return Err(DecodeError::Corrupt("invalid huffman symbol range"));
        }
        let mut lengths = [0u8; 256];
        for len in lengths[first..=last].iter_mut() {
            *len = (r.read_bits(4)? & 0x0F) as u8;
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        if lengths.iter().all(|&l| l == 0) {
            return Err(DecodeError::Corrupt(
                "nonempty payload with empty code table",
            ));
        }
        let dec = CanonicalDecoder::new(&lengths);
        let mut out = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            out.push(dec.decode(&mut r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Huffman.compress(data);
        assert_eq!(Huffman.decompress(&packed).unwrap(), data);
        packed.len()
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"xxxxxxxx");
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn hostile_length_table_cannot_overshift_or_escape() {
        // Lengths above MAX_LEN never come off the wire (the header
        // carries 4-bit fields), but the table builders must stay total
        // for any `[u8; 256]`: the caps bound the canonical-code shift
        // delta and the per-length bucket index.
        let mut lengths = [0u8; 256];
        lengths[0] = 255; // delta from the previous length would be 239
        lengths[1] = 16; // one past MAX_LEN
        lengths[2] = 1;
        let codes = canonical_codes(&lengths);
        assert_eq!(codes[2], (0, 1), "valid entry still canonical");
        let dec = CanonicalDecoder::new(&lengths);
        let buckets: u32 = dec.count.iter().sum();
        assert_eq!(buckets, 3, "every entry lands inside NUM_LENS");
    }

    #[test]
    fn single_symbol_uses_one_bit() {
        let data = vec![42u8; 10_000];
        let packed = Huffman.compress(&data);
        // header ≈ 136 bytes, payload 10_000 bits = 1250 bytes.
        assert!(packed.len() < 1500, "packed {}", packed.len());
    }

    #[test]
    fn skewed_distribution_compresses() {
        let data: Vec<u8> = (0..20_000u32)
            .map(|i| if i % 16 == 0 { (i % 7) as u8 + 1 } else { 0 })
            .collect();
        let packed = Huffman.compress(&data);
        assert!(packed.len() < data.len() / 4, "packed {}", packed.len());
        assert_eq!(Huffman.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn uniform_data_costs_about_eight_bits() {
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 97 % 256) as u8).collect();
        let packed = Huffman.compress(&data);
        let bps = (packed.len() as f64 - 136.0) * 8.0 / data.len() as f64;
        assert!(bps < 8.2, "bits/byte {bps}");
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let mut freqs = [0u64; 256];
        // Fibonacci-ish frequencies force deep codes without the limit.
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut().take(40) {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
        assert!(lengths.iter().all(|&l| l <= MAX_LEN as u8));
        // The limit must actually bind for this distribution.
        assert_eq!(lengths.iter().copied().max().unwrap(), MAX_LEN as u8);
    }

    #[test]
    fn length_limited_codes_stay_near_entropy() {
        // Geometric distribution; compare against Shannon entropy.
        let mut freqs = [0u64; 256];
        for (s, f) in freqs.iter_mut().enumerate().take(32) {
            *f = 1u64 << (31 - s.min(31));
        }
        let lengths = code_lengths(&freqs);
        let total: u64 = freqs.iter().sum();
        let avg_len: f64 = freqs
            .iter()
            .zip(&lengths)
            .map(|(&f, &l)| f as f64 * l as f64)
            .sum::<f64>()
            / total as f64;
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        assert!(
            avg_len < entropy + 0.2,
            "avg {avg_len} vs entropy {entropy}"
        );
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = [0u64; 256];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        let used: Vec<(u16, u8)> = codes.iter().copied().filter(|&(_, l)| l > 0).collect();
        for (i, &(ca, la)) in used.iter().enumerate() {
            for &(cb, lb) in used.iter().skip(i + 1) {
                let l = la.min(lb) as u32;
                assert_ne!(
                    ca as u32 >> (la as u32 - l),
                    cb as u32 >> (lb as u32 - l),
                    "prefix collision"
                );
            }
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let packed = Huffman.compress(b"some reasonably long input string");
        assert!(Huffman.decompress(&packed[..packed.len() - 2]).is_err());
        assert!(Huffman.decompress(&[]).is_err());
    }
}
