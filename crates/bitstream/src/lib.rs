//! Bit-level I/O and entropy coders for the LLM.265 reproduction.
//!
//! The paper's codec pipeline terminates in a CABAC entropy coder (§2.2),
//! and its baseline grid (Fig 14/15) chains integer/MXFP quantization into
//! one of four general-purpose compressors: Huffman, Deflate, LZ4, CABAC.
//! This crate implements all of them from scratch:
//!
//! - [`bits`] — MSB-first [`bits::BitWriter`]/[`bits::BitReader`] and
//!   Exp-Golomb codes (the syntax-element binarization H.26x uses).
//! - [`cabac`] — an adaptive binary arithmetic coder (LZMA-style range
//!   coder with 11-bit adaptive probabilities), the workhorse behind both
//!   the video codec's residual coding and the CABAC byte-compressor
//!   baseline.
//! - [`huffman`] — canonical Huffman coding of byte streams.
//! - [`deflate`] — an LZ77 + Huffman compressor in the spirit of DEFLATE
//!   (own framing, not zlib-compatible).
//! - [`lz4`] — a byte-oriented LZ compressor in the spirit of LZ4.
//! - [`ByteCodec`] — the common trait the baseline grid is built over.
//!
//! # Example
//!
//! ```
//! use llm265_bitstream::{ByteCodec, huffman::Huffman};
//!
//! let data = b"aaaaabbbccd".repeat(20);
//! let codec = Huffman;
//! let packed = codec.compress(&data);
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! assert!(packed.len() < data.len());
//! ```

#![forbid(unsafe_code)]

pub mod bits;
pub mod bytes;
pub mod cabac;
pub mod deflate;
mod error;
pub mod huffman;
pub mod lz4;

pub use error::{CodecError, DecodeError};

/// A lossless byte-stream compressor.
///
/// This is the interface the Fig 14 baseline grid composes with integer /
/// MXFP quantization ("chained tensor codecs", §7.1).
pub trait ByteCodec {
    /// Short name used in experiment tables ("Huffman", "LZ4", ...).
    fn name(&self) -> &'static str;

    /// Compresses `data` into a self-describing byte stream.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompresses a stream produced by [`ByteCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream is truncated or corrupt.
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError>;
}

/// The CABAC byte-compressor baseline: codes each byte bit-by-bit through a
/// binary context tree of adaptive probabilities (255 contexts), the
/// configuration hardware CABAC tensor compressors use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CabacBytes;

impl ByteCodec for CabacBytes {
    fn name(&self) -> &'static str {
        "CABAC"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut enc = cabac::CabacEncoder::new();
        // Binary context tree: node 1 is the root; descending by coded bits
        // selects children 2i / 2i+1, giving 255 inner nodes for 8 levels.
        let mut ctx = vec![cabac::Prob::default(); 256];
        for &byte in data {
            let mut node = 1usize;
            for i in (0..8).rev() {
                let bit = (byte >> i) & 1;
                enc.encode_bit(&mut ctx[node], bit == 1);
                node = (node << 1) | usize::from(bit);
            }
        }
        let payload = enc.finish();
        let mut out = Vec::with_capacity(payload.len() + 8);
        bytes::write_le_u64(&mut out, data.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut pos = 0;
        let len64: u64 = bytes::read_le_u64(data, &mut pos)
            .map_err(|_| CodecError::Truncated("cabac length header"))?;
        // CABAC tops out around 360:1 on degenerate all-same-bit input (the
        // probability floor costs ~0.022 bit/bin); a declared length far
        // beyond that is a hostile header, not a compressed stream.
        let payload_len: usize = data.len() - pos;
        if len64 > 4096 * (payload_len as u64).max(16) {
            return Err(CodecError::LimitExceeded("cabac declared length"));
        }
        let len = len64 as usize;
        let mut dec = cabac::CabacDecoder::new(data.get(pos..).unwrap_or(&[]));
        let mut ctx = vec![cabac::Prob::default(); 256];
        let mut out = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut node = 1usize;
            for _ in 0..8 {
                let bit = dec.decode_bit(&mut ctx[node]);
                node = (node << 1) | usize::from(bit);
            }
            out.push((node & 0xff) as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn ByteCodec, data: &[u8]) {
        let packed = codec.compress(data);
        let unpacked = codec.decompress(&packed).expect("decode failed");
        assert_eq!(unpacked, data, "roundtrip failed for {}", codec.name());
    }

    #[test]
    fn cabac_bytes_roundtrip_empty_and_small() {
        roundtrip(&CabacBytes, b"");
        roundtrip(&CabacBytes, b"a");
        roundtrip(&CabacBytes, b"hello world");
    }

    #[test]
    fn cabac_bytes_compresses_skewed_data() {
        let data: Vec<u8> = (0..10_000)
            .map(|i| if i % 10 == 0 { 1 } else { 0 })
            .collect();
        let packed = CabacBytes.compress(&data);
        assert!(
            packed.len() < data.len() / 5,
            "packed {} bytes",
            packed.len()
        );
        assert_eq!(CabacBytes.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn cabac_bytes_rejects_truncated_header() {
        assert!(CabacBytes.decompress(&[1, 2, 3]).is_err());
    }
}
