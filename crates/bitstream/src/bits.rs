//! MSB-first bit I/O and Exp-Golomb codes.
//!
//! Exp-Golomb is the universal integer binarization H.264/H.265 use for
//! syntax elements; the video codec crate uses it both directly (when the
//! entropy stage is disabled in the Fig 2b ablation) and as the
//! binarization feeding CABAC bypass bits.

use crate::DecodeError;

/// Writes bits MSB-first into a growing byte buffer.
///
/// # Example
///
/// ```
/// use llm265_bitstream::bits::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_ue(17);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_ue().unwrap(), 17);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.nbits as u64
    }

    /// Appends the low `n` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 57` (use two calls for wider fields) or if `value`
    /// has bits set above `n`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(n == 64 || value < (1u64 << n), "value wider than n bits");
        // Between calls the accumulator holds fewer than 8 pending bits
        // (the flush loop below drains whole bytes), so `nbits + n <= 64`
        // and every shift amount stays in range.
        debug_assert!(self.nbits < 8, "pending-bit invariant broken");
        self.acc = (self.acc << n) | value;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push(((self.acc >> self.nbits) & 0xFF) as u8);
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Appends an unsigned Exp-Golomb code (`ue(v)` in H.26x).
    pub fn write_ue(&mut self, value: u32) {
        let v = value as u64 + 1;
        let len = 64 - v.leading_zeros(); // bits in v
        self.write_bits(0, len - 1); // len-1 zero prefix
        self.write_bits(v, len);
    }

    /// Appends a signed Exp-Golomb code (`se(v)` in H.26x): 0, 1, -1, 2, -2…
    pub fn write_se(&mut self, value: i32) {
        // The mapping sends v to 2|v|-1 (positive) or 2|v| (non-positive);
        // i32::MIN would need 2^32, which ue(u32) cannot carry.
        debug_assert!(value > i32::MIN, "se(i32::MIN) is not representable");
        let abs = value.unsigned_abs();
        let mapped = if value > 0 {
            abs * 2 - 1
        } else {
            abs.saturating_mul(2)
        };
        self.write_ue(mapped);
    }

    /// Pads with zero bits to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.bytes.push((self.acc & 0xFF) as u8);
            self.nbits = 0;
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos as u64 * 8 - self.nbits as u64
    }

    fn refill(&mut self, need: u32) -> Result<(), DecodeError> {
        while self.nbits < need {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or(DecodeError::Truncated("bitstream exhausted"))?;
            self.pos += 1;
            self.acc = (self.acc << 8) | u64::from(byte);
            self.nbits += 8;
        }
        Ok(())
    }

    /// Reads `n` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 57`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, DecodeError> {
        assert!(n <= 57, "read_bits supports at most 57 bits per call");
        if n == 0 {
            return Ok(0);
        }
        self.refill(n)?;
        self.nbits -= n;
        let out = (self.acc >> self.nbits) & ((1u64 << n) - 1);
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a prefix longer than 32 zeros.
    pub fn read_ue(&mut self) -> Result<u32, DecodeError> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(DecodeError::Corrupt("exp-golomb prefix too long"));
            }
        }
        let suffix = self.read_bits(zeros)?;
        let v = (1u64 << zeros) | suffix;
        // A 32-zero prefix with an all-ones suffix encodes up to 2^33-2,
        // which a silent `as u32` would wrap into a bogus small value.
        u32::try_from(v - 1).map_err(|_| DecodeError::Corrupt("exp-golomb value overflows u32"))
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation.
    pub fn read_se(&mut self) -> Result<i32, DecodeError> {
        let m = i64::from(self.read_ue()?);
        let v = if m % 2 == 1 { (m + 1) / 2 } else { -(m / 2) };
        // ue(2^32-1) maps to +2^31, one past i32::MAX; wrapping it to
        // i32::MIN would silently flip the sign of a corrupt residual.
        i32::try_from(v).map_err(|_| DecodeError::Corrupt("exp-golomb se value overflows i32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields = [
            (0b1u64, 1u32),
            (0xABu64, 8),
            (0x3FFu64, 10),
            (0u64, 5),
            (0x1FFFFFu64, 21),
        ];
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn max_width_write_after_max_pending_bits() {
        // 7 pending bits then a 57-bit field hits the accumulator's exact
        // 64-bit capacity: `acc << 57` with 7 bits resident, then a drain
        // shift of `acc >> 56`. One more pending bit would overflow, so
        // this pins the `nbits < 8` invariant at its boundary.
        let mut w = BitWriter::new();
        let wide = (1u64 << 57) - 1;
        w.write_bits(0b010_1010, 7);
        w.write_bits(wide, 57);
        w.write_bits(wide - 1, 57);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(7).unwrap(), 0b010_1010);
        assert_eq!(r.read_bits(57).unwrap(), wide);
        assert_eq!(r.read_bits(57).unwrap(), wide - 1);
    }

    #[test]
    fn bit_len_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn ue_small_values_match_spec() {
        // ue(0)=1, ue(1)=010, ue(2)=011, ue(3)=00100 ... classic table.
        let mut w = BitWriter::new();
        w.write_ue(0);
        w.write_ue(1);
        w.write_ue(2);
        w.write_ue(3);
        let bytes = w.finish();
        // 1 010 011 00100 -> 1010 0110 0100 0000
        assert_eq!(bytes, vec![0b1010_0110, 0b0100_0000]);
    }

    #[test]
    fn ue_roundtrip_wide_range() {
        let mut w = BitWriter::new();
        let values = [0u32, 1, 2, 3, 7, 8, 100, 1023, 65_535, u32::MAX - 1];
        for &v in &values {
            w.write_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let mut w = BitWriter::new();
        let values = [0i32, 1, -1, 2, -2, 100, -100, i32::MAX / 2, i32::MIN / 2];
        for &v in &values {
            w.write_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_se().unwrap(), v);
        }
    }

    #[test]
    fn reader_errors_on_exhaustion() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn reader_errors_on_bad_ue_prefix() {
        // 40 zero bits: invalid prefix.
        let mut r = BitReader::new(&[0, 0, 0, 0, 0]);
        assert!(r.read_ue().is_err());
    }

    #[test]
    fn empty_writer_finishes_empty() {
        assert!(BitWriter::new().finish().is_empty());
    }
}
