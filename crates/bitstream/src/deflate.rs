//! LZ77 + Huffman compression in the spirit of DEFLATE.
//!
//! One of the four general-purpose compressors in the paper's baseline grid
//! (Fig 14/15). The parse uses hash-chain match search over a 32 KiB window
//! (like DEFLATE); the entropy stage Huffman-codes four separated streams
//! (token kinds, literals, match lengths, distance bytes) rather than
//! DEFLATE's interleaved alphabet — same algorithmic family, simpler
//! framing, and typically within a few percent of zlib on tensor data.

use crate::huffman::Huffman;
use crate::{bytes, ByteCodec, DecodeError};

/// Minimum match length worth emitting.
const MIN_MATCH: usize = 3;
/// Maximum match length (fits `len - MIN_MATCH` in one byte).
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Window size, as in DEFLATE.
const WINDOW: usize = 32_768;
/// Hash-chain search depth.
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

/// Deflate-style compressor (LZ77 parse + Huffman entropy stage).
///
/// # Example
///
/// ```
/// use llm265_bitstream::{ByteCodec, deflate::Deflate};
///
/// let data = b"the quick brown fox jumps over the lazy dog ".repeat(64);
/// let packed = Deflate.compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(Deflate.decompress(&packed).unwrap(), data);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deflate;

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    // The shift leaves HASH_BITS significant bits; the mask states that.
    ((v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) & 0x7FFF) as usize
}

struct Parse {
    kinds: Vec<u8>, // 0 = literal, 1 = match
    literals: Vec<u8>,
    lens: Vec<u8>,  // match length - MIN_MATCH
    dists: Vec<u8>, // little-endian u16 per match
}

fn lz77_parse(data: &[u8]) -> Parse {
    let mut parse = Parse {
        kinds: Vec::new(),
        literals: Vec::new(),
        lens: Vec::new(),
        dists: Vec::new(),
    };
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut pos = 0usize;

    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && pos - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - pos).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = pos - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[pos] = head[h];
            head[h] = pos;
        }

        // Marginal matches lose after entropy coding: a match costs a kind
        // byte, a length byte and two high-entropy distance bytes, so short
        // matches only pay off at short distances (zlib applies the same
        // kind of lazy heuristic).
        let worthwhile = best_len >= 6
            || (best_len >= 4 && best_dist < 1024)
            || (best_len >= MIN_MATCH && best_dist < 64);
        if worthwhile {
            parse.kinds.push(1);
            // `best_len <= MAX_MATCH` and `best_dist <= WINDOW`, so both
            // masks are value-preserving; they document the field widths.
            parse.lens.push(((best_len - MIN_MATCH) & 0xFF) as u8);
            parse
                .dists
                .extend_from_slice(&((best_dist & 0xFFFF) as u16).to_le_bytes());
            // Register hash entries inside the match (sparsely, for speed).
            let end = pos + best_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= data.len() && p < end {
                let h = hash3(data, p);
                prev[p] = head[h];
                head[h] = p;
                p += 1;
            }
            pos = end;
        } else {
            parse.kinds.push(0);
            parse.literals.push(data[pos]);
            pos += 1;
        }
    }
    parse
}

fn push_block(out: &mut Vec<u8>, block: &[u8]) {
    // Blocks are per-tensor compressed streams, far below 4 GiB.
    debug_assert!(u32::try_from(block.len()).is_ok());
    bytes::write_le_u32(out, (block.len() & 0xFFFF_FFFF) as u32);
    out.extend_from_slice(block);
}

fn pop_block<'a>(data: &'a [u8], pos: &mut usize) -> Result<&'a [u8], DecodeError> {
    let len: u32 = bytes::read_le_u32(data, pos)
        .map_err(|_| DecodeError::Truncated("deflate block header"))?;
    let len = len as usize;
    let block = data
        .get(*pos..)
        .and_then(|rest| rest.get(..len))
        .ok_or(DecodeError::Truncated("deflate block"))?;
    *pos += len;
    Ok(block)
}

/// Block modes, mirroring DEFLATE's stored / fixed / dynamic choice: the
/// encoder emits whichever of raw, Huffman-only, or LZ77+Huffman is
/// smallest, so incompressible or LZ-hostile data never expands by more
/// than the header.
const MODE_RAW: u8 = 0;
const MODE_HUFFMAN: u8 = 1;
const MODE_LZ77: u8 = 2;

impl ByteCodec for Deflate {
    fn name(&self) -> &'static str {
        "Deflate"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let parse = lz77_parse(data);
        let mut lz = Vec::new();
        push_block(&mut lz, &Huffman.compress(&parse.kinds));
        push_block(&mut lz, &Huffman.compress(&parse.literals));
        push_block(&mut lz, &Huffman.compress(&parse.lens));
        push_block(&mut lz, &Huffman.compress(&parse.dists));
        let huff = Huffman.compress(data);

        let mut out = Vec::new();
        bytes::write_le_u64(&mut out, data.len() as u64);
        if lz.len() <= huff.len() && lz.len() < data.len() {
            out.push(MODE_LZ77);
            out.extend_from_slice(&lz);
        } else if huff.len() < data.len() {
            out.push(MODE_HUFFMAN);
            out.extend_from_slice(&huff);
        } else {
            out.push(MODE_RAW);
            out.extend_from_slice(data);
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut pos = 0usize;
        let n: u64 = bytes::read_le_u64(data, &mut pos)
            .map_err(|_| DecodeError::Truncated("deflate header"))?;
        let n = n as usize;
        let mode = *data
            .get(pos)
            .ok_or(DecodeError::Truncated("deflate mode byte"))?;
        pos += 1;
        match mode {
            MODE_RAW => {
                let body = data
                    .get(pos..)
                    .and_then(|rest| rest.get(..n))
                    .ok_or(DecodeError::Truncated("deflate raw block"))?;
                return Ok(body.to_vec());
            }
            MODE_HUFFMAN => {
                let out = Huffman.decompress(data.get(pos..).unwrap_or(&[]))?;
                if out.len() != n {
                    return Err(DecodeError::Corrupt("deflate length mismatch"));
                }
                return Ok(out);
            }
            MODE_LZ77 => {}
            _ => return Err(DecodeError::Corrupt("unknown deflate block mode")),
        }
        let kinds = Huffman.decompress(pop_block(data, &mut pos)?)?;
        let literals = Huffman.decompress(pop_block(data, &mut pos)?)?;
        let lens = Huffman.decompress(pop_block(data, &mut pos)?)?;
        let dists = Huffman.decompress(pop_block(data, &mut pos)?)?;

        let mut out = Vec::with_capacity(n.min(1 << 24));
        let (mut li, mut mi) = (0usize, 0usize);
        for &kind in &kinds {
            if kind == 0 {
                let b = *literals
                    .get(li)
                    .ok_or(DecodeError::Truncated("deflate literal stream"))?;
                li += 1;
                out.push(b);
            } else {
                let len = usize::from(
                    *lens
                        .get(mi)
                        .ok_or(DecodeError::Truncated("deflate length stream"))?,
                ) + MIN_MATCH;
                let mut dpos = mi * 2;
                let dist = usize::from(
                    bytes::read_le_u16(&dists, &mut dpos)
                        .map_err(|_| DecodeError::Truncated("deflate distance stream"))?,
                );
                mi += 1;
                if dist == 0 || dist > out.len() {
                    return Err(DecodeError::Corrupt("deflate distance out of range"));
                }
                // A declared match must fit the remaining output: without
                // this cap a hostile token stream grows `out` far past `n`
                // before the final length check.
                if len > n.saturating_sub(out.len()) {
                    return Err(DecodeError::LimitExceeded("deflate match length"));
                }
                let start = out.len() - dist;
                // Byte-at-a-time so overlapping matches (RLE) replicate.
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        if out.len() != n {
            return Err(DecodeError::Corrupt("deflate length mismatch"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Deflate.compress(data);
        assert_eq!(Deflate.decompress(&packed).unwrap(), data);
        packed.len()
    }

    #[test]
    fn roundtrip_edges() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"aaaa");
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data = b"tensor codec tensor codec tensor codec ".repeat(500);
        let n = roundtrip(&data);
        assert!(n < data.len() / 10, "packed {n} of {}", data.len());
    }

    #[test]
    fn overlapping_match_rle() {
        let n = roundtrip(&[9u8; 50_000]);
        assert!(n < 1200, "packed {n}");
    }

    #[test]
    fn long_matches_are_capped_and_correct() {
        // A run longer than MAX_MATCH must be split into several matches.
        let mut data = b"prefix-".to_vec();
        data.extend_from_slice(&[b'z'; 3 * MAX_MATCH + 17]);
        data.extend_from_slice(b"-suffix");
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_small_overhead() {
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(0x9E3779B9) >> 11) as u8)
            .collect();
        let n = roundtrip(&data);
        assert!(n < data.len() + 4096, "packed {n}");
    }

    #[test]
    fn finds_matches_across_distance() {
        let mut data = Vec::new();
        data.extend_from_slice(b"needle-in-a-haystack");
        data.extend(std::iter::repeat_n(b'.', 20_000));
        data.extend_from_slice(b"needle-in-a-haystack");
        let n = roundtrip(&data);
        // The repeat is inside the window; should compress the second copy.
        assert!(n < data.len() / 8);
    }

    #[test]
    fn corrupt_stream_errors() {
        assert!(Deflate.decompress(&[]).is_err());
        assert!(Deflate.decompress(&[0u8; 8]).is_err());
        // Unknown block mode.
        let mut bad = vec![0u8; 9];
        bad[8] = 99;
        assert!(Deflate.decompress(&bad).is_err());
        // Truncated raw block (claims 5 bytes, carries none).
        let mut raw = 5u64.to_le_bytes().to_vec();
        raw.push(0);
        assert!(Deflate.decompress(&raw).is_err());
        let packed = Deflate.compress(b"hello world hello world hello");
        assert!(Deflate.decompress(&packed[..packed.len() - 3]).is_err());
    }

    #[test]
    fn mode_selection_avoids_expansion() {
        // Pseudorandom bytes: raw mode keeps overhead to the 9-byte header.
        let data: Vec<u8> = (0..4096u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                (z ^ (z >> 27)) as u8
            })
            .collect();
        let packed = Deflate.compress(&data);
        assert!(packed.len() <= data.len() + 9, "packed {}", packed.len());
        assert_eq!(Deflate.decompress(&packed).unwrap(), data);
    }
}
