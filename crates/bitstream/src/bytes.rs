//! Panic-free little-endian byte-field I/O.
//!
//! Every framed format in the workspace (CABAC byte streams, LZ4/Deflate
//! containers, video payload lengths, tensor-stream headers, archives)
//! reads fixed-width little-endian integers from untrusted bytes. These
//! helpers centralize that so the hot decode paths contain no
//! `try_into().unwrap()` — the pattern-match either yields the field or a
//! [`CodecError::Truncated`], and the cursor only advances on success.
//!
//! Writers are provided too, so the encoder/decoder symmetry lint can pair
//! `write_le_*` with `read_le_*` across the codebase.

use crate::CodecError;

/// Reads a little-endian `u16` at `*pos`, advancing the cursor on success.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if fewer than 2 bytes remain.
pub fn read_le_u16(data: &[u8], pos: &mut usize) -> Result<u16, CodecError> {
    match data.get(*pos..).and_then(|rest| rest.get(..2)) {
        Some(&[a, b]) => {
            *pos += 2;
            Ok(u16::from_le_bytes([a, b]))
        }
        _ => Err(CodecError::Truncated("u16 field")),
    }
}

/// Reads a little-endian `u32` at `*pos`, advancing the cursor on success.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if fewer than 4 bytes remain.
pub fn read_le_u32(data: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    match data.get(*pos..).and_then(|rest| rest.get(..4)) {
        Some(&[a, b, c, d]) => {
            *pos += 4;
            Ok(u32::from_le_bytes([a, b, c, d]))
        }
        _ => Err(CodecError::Truncated("u32 field")),
    }
}

/// Reads a little-endian `u64` at `*pos`, advancing the cursor on success.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if fewer than 8 bytes remain.
pub fn read_le_u64(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    match data.get(*pos..).and_then(|rest| rest.get(..8)) {
        Some(&[a, b, c, d, e, f, g, h]) => {
            *pos += 8;
            Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h]))
        }
        _ => Err(CodecError::Truncated("u64 field")),
    }
}

/// Appends a little-endian `u16`.
pub fn write_le_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn write_le_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn write_le_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        write_le_u16(&mut buf, 0xbeef);
        write_le_u32(&mut buf, 0xdead_beef);
        write_le_u64(&mut buf, 0x0123_4567_89ab_cdef);
        let mut pos = 0;
        assert_eq!(read_le_u16(&buf, &mut pos).unwrap(), 0xbeef);
        assert_eq!(read_le_u32(&buf, &mut pos).unwrap(), 0xdead_beef);
        assert_eq!(read_le_u64(&buf, &mut pos).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn short_reads_error_without_moving_the_cursor() {
        let buf = [1u8, 2, 3];
        let mut pos = 0;
        assert_eq!(
            read_le_u32(&buf, &mut pos),
            Err(CodecError::Truncated("u32 field"))
        );
        assert_eq!(pos, 0);
        assert_eq!(read_le_u16(&buf, &mut pos).unwrap(), 0x0201);
        assert_eq!(
            read_le_u16(&buf, &mut pos),
            Err(CodecError::Truncated("u16 field"))
        );
        assert_eq!(pos, 2);
    }

    #[test]
    fn reads_past_the_end_of_a_large_offset_error() {
        let buf = [0u8; 4];
        let mut pos = usize::MAX - 1;
        assert!(read_le_u16(&buf, &mut pos).is_err());
    }
}
