//! Byte-oriented LZ compression in the spirit of LZ4.
//!
//! One of the four general-purpose compressors in the paper's baseline grid
//! (Fig 14/15). The format mirrors LZ4's block layout — a token byte whose
//! nibbles carry literal-run and match lengths (extended by 255-runs),
//! followed by literals and a 16-bit match offset — with our own framing
//! (a length prefix) instead of the LZ4 frame format.

use crate::{bytes, ByteCodec, DecodeError};

/// Minimum match length; matches shorter than this are emitted as literals.
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (16-bit offsets).
const MAX_DIST: usize = 65_535;
/// Hash table size (power of two).
const HASH_BITS: u32 = 16;

/// LZ4-style byte compressor.
///
/// # Example
///
/// ```
/// use llm265_bitstream::{ByteCodec, lz4::Lz4};
///
/// let data = b"repetition repetition repetition".to_vec();
/// let packed = Lz4.compress(&data);
/// assert_eq!(Lz4.decompress(&packed).unwrap(), data);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lz4;

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    // The shift leaves HASH_BITS significant bits; the mask states that.
    ((v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) & 0xFFFF) as usize
}

fn write_len_ext(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    // The loop leaves `extra < 255`; the mask states the byte width.
    out.push((extra & 0xFF) as u8);
}

fn read_len_ext(data: &[u8], pos: &mut usize) -> Result<usize, DecodeError> {
    let mut total = 0usize;
    loop {
        let b = *data
            .get(*pos)
            .ok_or(DecodeError::Truncated("lz4 length extension"))?;
        *pos += 1;
        total += usize::from(b);
        if b != 255 {
            return Ok(total);
        }
    }
}

impl ByteCodec for Lz4 {
    fn name(&self) -> &'static str {
        "LZ4"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        bytes::write_le_u64(&mut out, data.len() as u64);

        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut pos = 0usize;
        let mut lit_start = 0usize;

        while pos + MIN_MATCH <= data.len() {
            let h = hash4(data, pos);
            let cand = table[h];
            table[h] = pos;

            let matched = cand != usize::MAX
                && pos - cand <= MAX_DIST
                && data[cand..cand + MIN_MATCH] == data[pos..pos + MIN_MATCH];
            if !matched {
                pos += 1;
                continue;
            }

            // Extend the match forward.
            let mut mlen = MIN_MATCH;
            while pos + mlen < data.len() && data[cand + mlen] == data[pos + mlen] {
                mlen += 1;
            }

            emit_sequence(&mut out, &data[lit_start..pos], Some((pos - cand, mlen)));

            // Insert a few positions inside the match to keep the table warm.
            let end = pos + mlen;
            let mut p = pos + 1;
            while p + MIN_MATCH <= data.len() && p < end {
                table[hash4(data, p)] = p;
                p += 2;
            }
            pos = end;
            lit_start = pos;
        }
        emit_sequence(&mut out, &data[lit_start..], None);
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut pos = 0usize;
        let n: u64 =
            bytes::read_le_u64(data, &mut pos).map_err(|_| DecodeError::Truncated("lz4 header"))?;
        let n = n as usize;
        let mut out = Vec::with_capacity(n.min(1 << 24));

        while out.len() < n {
            let token = *data.get(pos).ok_or(DecodeError::Truncated("lz4 token"))?;
            pos += 1;
            let mut lit_len = usize::from(token >> 4);
            if lit_len == 15 {
                lit_len += read_len_ext(data, &mut pos)?;
            }
            let literals = data
                .get(pos..)
                .and_then(|rest| rest.get(..lit_len))
                .ok_or(DecodeError::Truncated("lz4 literals"))?;
            out.extend_from_slice(literals);
            pos += lit_len;
            if out.len() >= n {
                break;
            }

            let dist = usize::from(
                bytes::read_le_u16(data, &mut pos)
                    .map_err(|_| DecodeError::Truncated("lz4 offset"))?,
            );
            if dist == 0 || dist > out.len() {
                return Err(DecodeError::Corrupt("lz4 offset out of range"));
            }
            let mut mlen = (token & 0x0f) as usize;
            if mlen == 15 {
                mlen += read_len_ext(data, &mut pos)?;
            }
            let mlen = mlen + MIN_MATCH;
            // A declared match must fit the remaining output: without this
            // cap a hostile length extension grows `out` far past `n`
            // before the loop condition is rechecked.
            if mlen > n - out.len() {
                return Err(DecodeError::LimitExceeded("lz4 match length"));
            }
            // Overlapping copies are the point of LZ: copy byte-by-byte.
            let start = out.len() - dist;
            for i in 0..mlen {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() != n {
            return Err(DecodeError::Corrupt("lz4 length mismatch"));
        }
        Ok(out)
    }
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nib = literals.len().min(15) as u8;
    let (dist, mlen) = m.unwrap_or((0, MIN_MATCH));
    debug_assert!(mlen >= MIN_MATCH);
    let m_extra = mlen - MIN_MATCH;
    let m_nib = if m.is_some() {
        m_extra.min(15) as u8
    } else {
        0
    };
    out.push((lit_nib << 4) | m_nib);
    if literals.len() >= 15 {
        write_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if m.is_some() {
        // `dist <= MAX_DIST = 65_535`; the mask states the field width.
        out.extend_from_slice(&((dist & 0xFFFF) as u16).to_le_bytes());
        if m_extra >= 15 {
            write_len_ext(out, m_extra - 15);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Lz4.compress(data);
        assert_eq!(Lz4.decompress(&packed).unwrap(), data, "len {}", data.len());
        packed.len()
    }

    #[test]
    fn roundtrip_edges() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcd");
        roundtrip(b"abcde");
    }

    #[test]
    fn roundtrip_repetitive() {
        let n = roundtrip(&b"0123456789".repeat(1000));
        assert!(n < 300, "packed {n}");
    }

    #[test]
    fn roundtrip_all_same_byte_uses_overlapping_match() {
        let n = roundtrip(&[7u8; 100_000]);
        assert!(n < 500, "packed {n}");
    }

    #[test]
    fn roundtrip_long_literal_runs() {
        // Incompressible data forces long literal-extension chains.
        let data: Vec<u8> = (0..70_000u64)
            .map(|i| {
                // splitmix64 finalizer: no short-range structure at all.
                let mut z = i.wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as u8
            })
            .collect();
        let n = roundtrip(&data);
        assert!(n < data.len() + 1024, "overhead too large: {n}");
        assert!(
            n > data.len() * 9 / 10,
            "data should be mostly incompressible: {n}"
        );
    }

    #[test]
    fn roundtrip_mixed_content() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(format!("record-{:04}:", i % 37).as_bytes());
            data.extend_from_slice(&[((i * 31) % 251) as u8; 13]);
        }
        let n = roundtrip(&data);
        assert!(n < data.len());
    }

    #[test]
    fn distance_cap_respected() {
        // A repeat farther than 65535 bytes must not be matched.
        let mut data = vec![0u8; 70_000];
        data[..8].copy_from_slice(b"UNIQUEXY");
        let tail = data.len() - 8;
        data[tail..].copy_from_slice(b"UNIQUEXY");
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        assert!(Lz4.decompress(&[]).is_err());
        assert!(Lz4.decompress(&[0; 7]).is_err());
        let mut packed = Lz4.compress(&b"hello hello hello hello".repeat(4));
        // Corrupt an offset to zero.
        let len = packed.len();
        packed[len - 3] = 0;
        packed[len - 2] = 0;
        let _ = Lz4.decompress(&packed); // must not panic
                                         // Truncations must not panic (some may still decode a prefix).
        for cut in 1..8 {
            let _ = Lz4.decompress(&packed[..packed.len() - cut]);
        }
    }
}
