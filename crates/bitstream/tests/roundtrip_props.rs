//! Property tests: every ByteCodec must be lossless on arbitrary bytes.

use llm265_bitstream::{deflate::Deflate, huffman::Huffman, lz4::Lz4, ByteCodec, CabacBytes};
use proptest::prelude::*;

fn codecs() -> Vec<Box<dyn ByteCodec>> {
    vec![
        Box::new(Huffman),
        Box::new(Deflate),
        Box::new(Lz4),
        Box::new(CabacBytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in codecs() {
            let packed = codec.compress(&data);
            let unpacked = codec.decompress(&packed)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            prop_assert_eq!(&unpacked, &data, "{} roundtrip", codec.name());
        }
    }

    #[test]
    fn prop_roundtrip_skewed_bytes(
        seed in any::<u64>(),
        len in 0usize..8192,
        spread in 1u32..64,
    ) {
        // Bell-shaped symbol streams (what quantized tensors look like).
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let data: Vec<u8> = (0..len)
            .map(|_| {
                let centered = (next() % spread) as i64 - (next() % spread) as i64;
                (128i64 + centered).clamp(0, 255) as u8
            })
            .collect();
        for codec in codecs() {
            let packed = codec.compress(&data);
            prop_assert_eq!(&codec.decompress(&packed).unwrap(), &data, "{}", codec.name());
        }
    }

    #[test]
    fn prop_truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 1..512), cut in 1usize..64) {
        for codec in codecs() {
            let packed = codec.compress(&data);
            let cut = cut.min(packed.len());
            // Truncated streams must error or return wrong data — never panic.
            let _ = codec.decompress(&packed[..packed.len() - cut]);
        }
    }
}
