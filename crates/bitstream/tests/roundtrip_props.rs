//! Property tests: every ByteCodec must be lossless on arbitrary bytes.

use llm265_bitstream::{deflate::Deflate, huffman::Huffman, lz4::Lz4, ByteCodec, CabacBytes};
use llm265_tensor::check::Checker;
use llm265_tensor::prop_ensure;

fn codecs() -> Vec<Box<dyn ByteCodec>> {
    vec![
        Box::new(Huffman),
        Box::new(Deflate),
        Box::new(Lz4),
        Box::new(CabacBytes),
    ]
}

#[test]
fn prop_roundtrip_arbitrary_bytes() {
    Checker::new(24).run("roundtrip arbitrary bytes", |rng| {
        let len = rng.below_usize(4096);
        let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        for codec in codecs() {
            let packed = codec.compress(&data);
            let unpacked = codec
                .decompress(&packed)
                .map_err(|e| format!("{}: {e}", codec.name()))?;
            prop_ensure!(unpacked == data, "{} roundtrip mismatch", codec.name());
        }
        Ok(())
    });
}

#[test]
fn prop_roundtrip_skewed_bytes() {
    Checker::new(24).run("roundtrip skewed bytes", |rng| {
        // Bell-shaped symbol streams (what quantized tensors look like).
        let len = rng.below_usize(8192);
        let spread = 1 + rng.below(63);
        let data: Vec<u8> = (0..len)
            .map(|_| {
                let centered = rng.below(spread) as i64 - rng.below(spread) as i64;
                (128i64 + centered).clamp(0, 255) as u8
            })
            .collect();
        for codec in codecs() {
            let packed = codec.compress(&data);
            let unpacked = codec
                .decompress(&packed)
                .map_err(|e| format!("{}: {e}", codec.name()))?;
            prop_ensure!(unpacked == data, "{} roundtrip mismatch", codec.name());
        }
        Ok(())
    });
}

#[test]
fn prop_truncation_never_panics() {
    Checker::new(24).run("truncation never panics", |rng| {
        let len = 1 + rng.below_usize(511);
        let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let cut = 1 + rng.below_usize(63);
        for codec in codecs() {
            let packed = codec.compress(&data);
            let cut = cut.min(packed.len());
            // Truncated streams must error or return wrong data — never panic.
            let _ = codec.decompress(&packed[..packed.len() - cut]);
        }
        Ok(())
    });
}
