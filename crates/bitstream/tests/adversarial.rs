//! Adversarial decode tests: hostile byte streams must produce
//! [`llm265_bitstream::CodecError`]s, never panics.
//!
//! These complement the random-truncation property tests in
//! `roundtrip_props.rs` with *systematic* sweeps: every truncation length,
//! every byte position flipped, plus hand-built hostile headers.

use llm265_bitstream::{
    deflate::Deflate, huffman::Huffman, lz4::Lz4, ByteCodec, CabacBytes, CodecError,
};

fn codecs() -> Vec<Box<dyn ByteCodec>> {
    vec![
        Box::new(Huffman),
        Box::new(Deflate),
        Box::new(Lz4),
        Box::new(CabacBytes),
    ]
}

/// A payload with enough structure to exercise match/literal paths in the
/// LZ codecs and multi-symbol tables in the entropy coders.
fn sample_payload() -> Vec<u8> {
    let mut data = b"the quick brown fox jumps over the lazy dog. ".repeat(8);
    data.extend((0u16..512).map(|i| (i % 251) as u8));
    data
}

#[test]
fn empty_input_errors_for_every_codec() {
    for codec in codecs() {
        // CABAC decodes an empty stream to empty output only when the
        // length header is present; with *no bytes at all* every codec
        // must error rather than fabricate output.
        assert!(
            codec.decompress(&[]).is_err(),
            "{}: empty input must not decode",
            codec.name()
        );
    }
}

#[test]
fn every_truncation_point_errors_or_decodes_without_panic() {
    let data = sample_payload();
    for codec in codecs() {
        let packed = codec.compress(&data);
        for cut in 0..packed.len() {
            // Must never panic. A short prefix may still happen to parse
            // (LZ formats are self-delimiting per token, and a trailing
            // byte can be redundant), but a prefix missing 8+ bytes of a
            // stream that ends in incompressible literals cannot still
            // reproduce the full payload.
            match codec.decompress(&packed[..cut]) {
                Err(_) => {}
                Ok(out) => {
                    if cut + 8 <= packed.len() {
                        assert_ne!(
                            out,
                            data,
                            "{}: truncation to {cut}/{} bytes still decoded fully",
                            codec.name(),
                            packed.len()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_single_byte_flip_never_panics() {
    let data = sample_payload();
    for codec in codecs() {
        let packed = codec.compress(&data);
        for pos in 0..packed.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut evil = packed.clone();
                evil[pos] ^= flip;
                // Corruption may or may not be detected (entropy-coded
                // payloads have no checksum), but it must never panic.
                let _ = codec.decompress(&evil);
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic xorshift garbage, no external PRNG crate.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [1usize, 2, 7, 8, 9, 63, 256, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
        for codec in codecs() {
            let _ = codec.decompress(&garbage);
        }
    }
}

#[test]
fn cabac_hostile_declared_length_is_rejected_not_allocated() {
    // An 8-byte header declaring ~u64::MAX decoded bytes with a tiny
    // payload: the decoder must refuse instead of looping/allocating.
    let mut evil = Vec::new();
    evil.extend_from_slice(&u64::MAX.to_le_bytes());
    evil.extend_from_slice(&[0u8; 16]);
    match CabacBytes.decompress(&evil) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

#[test]
fn lz4_hostile_match_length_is_rejected_not_amplified() {
    // Declared output of 8 bytes, then a sequence whose match-length
    // extension asks for ~725 more: the decoder must refuse instead of
    // growing `out` far past the declared length.
    let mut evil = Vec::new();
    evil.extend_from_slice(&8u64.to_le_bytes());
    evil.push(0x4F); // 4 literals, match nibble 15 (extended)
    evil.extend_from_slice(b"abcd");
    evil.extend_from_slice(&1u16.to_le_bytes()); // distance 1
    evil.extend_from_slice(&[255, 255, 200]); // match extension: +710
    match Lz4.decompress(&evil) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

#[test]
fn huffman_hostile_declared_length_is_rejected_not_allocated() {
    // All-ones header bits declare ~2^57 symbols from a 10-byte stream;
    // every symbol costs at least one bit, so this is impossible and must
    // be rejected before anything is sized by it.
    match Huffman.decompress(&[0xFF; 10]) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

#[test]
fn deflate_hostile_match_length_is_rejected_not_amplified() {
    // A valid LZ77-mode stream whose declared length is then shrunk to 2:
    // the first match would overshoot the remaining output, which must be
    // an error instead of unbounded growth before the final length check.
    let data = vec![b'a'; 4096];
    let mut evil = Deflate.compress(&data);
    assert_eq!(evil[8], 2, "expected LZ77 block mode");
    evil[..8].copy_from_slice(&2u64.to_le_bytes());
    match Deflate.decompress(&evil) {
        Err(CodecError::LimitExceeded(_)) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

#[test]
fn cabac_truncated_header_is_truncation_error() {
    for len in 0..8 {
        match CabacBytes.decompress(&vec![0u8; len]) {
            Err(CodecError::Truncated(_)) => {}
            other => panic!("header of {len} bytes: expected Truncated, got {other:?}"),
        }
    }
}
